"""Metamorphic transforms: correct algorithms pass, mutants get caught.

The mutation smoke-checks pair every transform with a deliberately
injected dominance bug of the kind that transform is designed to expose:

=================  =====================================================
transform          mutant it catches
=================  =====================================================
shuffle            prefix-window scan (only compares against earlier
                   rows, i.e. order-dependent results)
duplicate          drops duplicate rows before evaluating
monotone-rescale   sum-based dominance (compares attribute sums)
relabel            hard-coded column-order chain (ignores the p-graph)
append-dominated   unconditionally includes the last tuple
=================  =====================================================
"""

import random

import numpy as np
import pytest

from repro.algorithms import REGISTRY, naive
from repro.algorithms.osdc import osdc
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.verify.metamorphic import (TRANSFORMS, permute_graph,
                                      run_transform)


# -- deliberately broken algorithms (uniform registry signature) ------------

def mutant_prefix_window(ranks, graph, *, stats=None, **options):
    """Keeps any row not dominated by an *earlier* row: order-dependent."""
    from repro.core.dominance import Dominance
    dominance = Dominance(graph)
    kept: list[int] = []
    for row in range(ranks.shape[0]):
        if not kept or not dominance.dominators_mask(
                ranks[np.asarray(kept, dtype=np.intp)],
                ranks[row]).any():
            kept.append(row)
    return np.asarray(kept, dtype=np.intp)


def mutant_drop_duplicates(ranks, graph, *, stats=None, **options):
    """Deduplicates rows first; copies of maximal rows go missing."""
    _, first = np.unique(ranks, axis=0, return_index=True)
    unique_rows = np.sort(first)
    local = naive(ranks[unique_rows], graph)
    return np.sort(unique_rows[local])


def mutant_sum_dominance(ranks, graph, *, stats=None, **options):
    """'Dominates' means a strictly smaller attribute sum."""
    sums = ranks.sum(axis=1)
    return np.flatnonzero(sums == sums.min())


def mutant_column_chain(ranks, graph, *, stats=None, **options):
    """Ignores the p-graph: prioritized chain in raw column order."""
    best = ranks[np.lexsort(ranks.T[::-1])[0]]
    return np.flatnonzero((ranks == best).all(axis=1))


def mutant_include_last(ranks, graph, *, stats=None, **options):
    """Correct result plus, always, the final tuple."""
    result = set(naive(ranks, graph).tolist())
    if ranks.shape[0]:
        result.add(ranks.shape[0] - 1)
    return np.sort(np.asarray(sorted(result), dtype=np.intp))


def _catches(transform_name, mutant, ranks, graph, seeds=range(8)):
    """Does the transform expose the mutant under at least one seed?"""
    transform = TRANSFORMS[transform_name]
    return any(
        run_transform(transform, ranks, graph, mutant,
                      random.Random(seed), algorithm="mutant")
        for seed in seeds
    )


def _anti_correlated(n=6):
    # every row maximal under A * B: duplicating any row must show up
    return np.array([[float(i), float(n - 1 - i)] for i in range(n)])


class TestMutantsAreCaught:
    def test_shuffle_catches_order_dependence(self):
        ranks = np.array([[1.0, 1.0], [0.0, 0.0], [2.0, 2.0]])
        graph = PGraph.from_expression(parse("A * B"))
        assert _catches("shuffle", mutant_prefix_window, ranks, graph)

    def test_duplicate_catches_deduplication(self):
        ranks = _anti_correlated()
        graph = PGraph.from_expression(parse("A * B"))
        assert _catches("duplicate", mutant_drop_duplicates, ranks, graph)

    def test_monotone_rescale_catches_sum_dominance(self):
        ranks = np.array([[0.0, 3.0], [2.0, 0.0], [1.0, 1.0]])
        graph = PGraph.from_expression(parse("A * B"))
        assert _catches("monotone-rescale", mutant_sum_dominance,
                        ranks, graph)

    def test_relabel_catches_hardcoded_column_order(self):
        ranks = np.array([[0.0, 3.0], [1.0, 2.0], [3.0, 0.0]])
        graph = PGraph.from_expression(parse("A & B"))
        assert _catches("relabel", mutant_column_chain, ranks, graph)

    def test_append_dominated_catches_always_include_last(self):
        ranks = np.array([[0.0, 1.0], [1.0, 0.0]])
        graph = PGraph.from_expression(parse("A * B"))
        assert _catches("append-dominated", mutant_include_last,
                        ranks, graph)


class TestCorrectAlgorithmsPass:
    @pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
    def test_osdc_satisfies_every_relation(self, transform_name):
        rng = random.Random(5)
        nrng = np.random.default_rng(5)
        transform = TRANSFORMS[transform_name]
        for trial in range(6):
            d = rng.randint(1, 4)
            names = [f"A{i}" for i in range(d)]
            from repro.sampling.exact_counting import ExactUniformSampler
            graph = ExactUniformSampler(names).sample_graph(rng)
            ranks = nrng.integers(0, 5, size=(40, d)).astype(float)
            assert run_transform(transform, ranks, graph, osdc, rng,
                                 algorithm="osdc") == []

    def test_every_registered_algorithm_passes_once(self):
        rng = random.Random(17)
        graph = PGraph.from_expression(parse("A & (B * C)"))
        nrng = np.random.default_rng(17)
        ranks = nrng.integers(0, 4, size=(60, 3)).astype(float)
        for transform in TRANSFORMS.values():
            for name, function in sorted(REGISTRY.items()):
                assert run_transform(transform, ranks, graph, function,
                                     random.Random(1),
                                     algorithm=name) == [], \
                    (transform.name, name)


class TestPermuteGraph:
    def test_isomorphism_preserves_structure(self):
        graph = PGraph.from_expression(parse("A & (B * C)"))
        sigma = [2, 0, 1]
        permuted = permute_graph(graph, sigma)
        assert permuted.names == tuple(graph.names[i] for i in sigma)
        assert sorted(len(bin(m).replace("0b", "").replace("0", ""))
                      for m in permuted.closure) == \
            sorted(len(bin(m).replace("0b", "").replace("0", ""))
                   for m in graph.closure)
        # applying the inverse permutation restores the original
        inverse = [sigma.index(i) for i in range(3)]
        assert permute_graph(permuted, inverse) == graph

    def test_rejects_non_permutations(self):
        graph = PGraph.from_expression(parse("A * B"))
        with pytest.raises(ValueError):
            permute_graph(graph, [0, 0])
