"""Tests for the synthetic data generators (Section 7.2 + simulators)."""

import numpy as np
import pytest

from repro.data.classic import anticorrelated, correlated, independent
from repro.data.correlation import (mean_pairwise_correlation,
                                    pairwise_correlations)
from repro.data.covertype import (COVERTYPE_ATTRIBUTES,
                                  COVERTYPE_DEFAULT_ROWS, covertype_dataset)
from repro.data.gaussian import (alpha_for_correlation,
                                 equicorrelated_gaussian,
                                 expected_correlation, min_correlation)
from repro.data.nba import NBA_ATTRIBUTES, NBA_DEFAULT_ROWS, nba_dataset


class TestEquicorrelatedGaussian:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 1.0, 4.0, 25.0])
    def test_measured_correlation_matches_theory(self, alpha, nrng):
        d = 8
        data = equicorrelated_gaussian(15_000, d, alpha, nrng,
                                       round_decimals=None)
        measured = mean_pairwise_correlation(data)
        assert measured == pytest.approx(expected_correlation(alpha, d),
                                         abs=0.02)

    def test_all_pairs_share_the_correlation(self, nrng):
        data = equicorrelated_gaussian(20_000, 6, 10.0, nrng,
                                       round_decimals=None)
        rhos = pairwise_correlations(data)
        assert rhos.std() < 0.02

    def test_alpha_for_correlation_inverts(self):
        for d in (4, 10, 20):
            for rho in (-0.05, 0.0, 0.3, 0.8):
                alpha = alpha_for_correlation(rho, d)
                assert expected_correlation(alpha, d) == \
                    pytest.approx(rho, abs=1e-12)

    def test_alpha_for_correlation_bounds(self):
        with pytest.raises(ValueError):
            alpha_for_correlation(1.0, 5)
        with pytest.raises(ValueError):
            alpha_for_correlation(min_correlation(5) - 0.01, 5)

    def test_min_correlation(self):
        assert min_correlation(5) == -0.25
        with pytest.raises(ValueError):
            min_correlation(1)

    def test_rounding_creates_duplicates(self, nrng):
        coarse = equicorrelated_gaussian(5_000, 3, 1.0, nrng,
                                         round_decimals=1)
        assert len(np.unique(coarse[:, 0])) < 200

    def test_shape_and_validation(self, nrng):
        assert equicorrelated_gaussian(7, 3, 1.0, nrng).shape == (7, 3)
        with pytest.raises(ValueError):
            equicorrelated_gaussian(-1, 3, 1.0, nrng)
        with pytest.raises(ValueError):
            equicorrelated_gaussian(5, 0, 1.0, nrng)
        with pytest.raises(ValueError):
            equicorrelated_gaussian(5, 3, -0.5, nrng)


class TestClassicGenerators:
    def test_independent_is_uncorrelated(self, nrng):
        data = independent(20_000, 5, nrng)
        assert abs(mean_pairwise_correlation(data)) < 0.02

    def test_correlated_is_positive(self, nrng):
        data = correlated(10_000, 5, nrng)
        assert mean_pairwise_correlation(data) > 0.5

    def test_anticorrelated_is_negative(self, nrng):
        data = anticorrelated(10_000, 5, nrng)
        assert mean_pairwise_correlation(data) < -0.1

    def test_anticorrelated_grows_skylines(self, nrng):
        from repro.algorithms import osdc
        from repro.core.expressions import sky
        from repro.core.pgraph import PGraph
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(sky(names), names=names)
        small = osdc(correlated(4000, 4, nrng), graph).size
        large = osdc(anticorrelated(4000, 4, nrng), graph).size
        assert large > 10 * small

    def test_rounding_knob(self, nrng):
        data = independent(1000, 2, nrng, round_decimals=1)
        assert len(np.unique(data)) <= 22


class TestSimulatedRealData:
    def test_nba_shape_and_positivity(self):
        data = nba_dataset(2_000)
        assert data.shape == (2_000, len(NBA_ATTRIBUTES))
        assert (data[:, :12] >= 0).all()  # counting stats are non-negative

    def test_nba_default_size_matches_paper(self):
        assert NBA_DEFAULT_ROWS == 21_959

    def test_nba_counting_stats_strongly_correlated(self):
        data = nba_dataset(8_000)
        stats_block = data[:, 1:8]  # minutes .. blk
        assert mean_pairwise_correlation(stats_block) > 0.4

    def test_nba_heights_weights_linked(self):
        data = nba_dataset(8_000)
        height = data[:, NBA_ATTRIBUTES.index("height")]
        weight = data[:, NBA_ATTRIBUTES.index("weight")]
        rho = np.corrcoef(height, weight)[0, 1]
        assert rho > 0.5

    def test_nba_deterministic_by_default(self):
        assert np.array_equal(nba_dataset(500), nba_dataset(500))

    def test_covertype_shape_and_ranges(self):
        data = covertype_dataset(3_000)
        assert data.shape == (3_000, len(COVERTYPE_ATTRIBUTES))
        shade = data[:, COVERTYPE_ATTRIBUTES.index("hillshade_9am")]
        assert shade.min() >= 0 and shade.max() <= 254
        assert (data == np.round(data)).all()  # integral, duplicate-heavy

    def test_covertype_default_is_tenth_of_paper(self):
        assert COVERTYPE_DEFAULT_ROWS == 58_101

    def test_covertype_morning_afternoon_shade_anticorrelated(self):
        data = covertype_dataset(10_000)
        am = data[:, COVERTYPE_ATTRIBUTES.index("hillshade_9am")]
        pm = data[:, COVERTYPE_ATTRIBUTES.index("hillshade_3pm")]
        assert np.corrcoef(am, pm)[0, 1] < -0.3

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            nba_dataset(-1)
        with pytest.raises(ValueError):
            covertype_dataset(-1)


class TestCorrelationMeasurement:
    def test_perfect_correlation(self):
        column = np.arange(10.0)
        data = np.column_stack([column, column * 2 + 1])
        assert mean_pairwise_correlation(data) == pytest.approx(1.0)

    def test_constant_column_rejected(self):
        data = np.column_stack([np.ones(5), np.arange(5.0)])
        with pytest.raises(ValueError):
            pairwise_correlations(data)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            pairwise_correlations(np.ones((5, 1)))
        with pytest.raises(ValueError):
            pairwise_correlations(np.ones((1, 3)))
