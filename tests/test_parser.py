"""Unit tests for the p-expression text parser."""

import pytest

from repro.core.expressions import Att, Pareto, Prioritized, pareto, prioritized
from repro.core.parser import ParseError, parse


class TestBasics:
    def test_single_attribute(self):
        assert parse("price") == Att("price")

    def test_pareto(self):
        assert parse("A * B") == pareto(Att("A"), Att("B"))

    def test_unicode_pareto_symbol(self):
        assert parse("A ⊗ B") == parse("A * B")

    def test_prioritized(self):
        assert parse("A & B") == prioritized(Att("A"), Att("B"))

    def test_whitespace_insensitive(self):
        assert parse("  A&B *C ") == parse("(A & B) * C")


class TestPrecedence:
    def test_prioritized_binds_tighter(self):
        expr = parse("P & T * M")
        assert isinstance(expr, Pareto)
        assert expr == pareto(prioritized(Att("P"), Att("T")), Att("M"))

    def test_parentheses_override(self):
        expr = parse("P & (T * M)")
        assert isinstance(expr, Prioritized)

    def test_paper_example1_expressions(self):
        # all four expressions of Example 1 must parse and round-trip
        for text in ["P", "(P * M) & T", "(P & T) * M", "M & T & P"]:
            expr = parse(text)
            assert parse(str(expr)) == expr

    def test_paper_example2_expression(self):
        expr = parse("M & ((D & W) * P) & (T * H)")
        assert expr.attributes() == ("M", "D", "W", "P", "T", "H")


class TestRoundTrips:
    def test_nested_round_trip(self):
        text = "((A & B) * C) & (D * (E & F))"
        expr = parse(text)
        assert parse(str(expr)) == expr

    def test_chain_flattening(self):
        expr = parse("A & B & C & D")
        assert isinstance(expr, Prioritized)
        assert len(expr.children) == 4


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "   ", "A &", "& A", "A * * B", "(A", "A)", "A B",
        "A & (B", "()", "A # B", "1A",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_repeated_attribute_rejected(self):
        from repro.core.expressions import RepeatedAttributeError
        with pytest.raises(RepeatedAttributeError):
            parse("A & (B * A)")

    def test_error_reports_position(self):
        with pytest.raises(ParseError, match="position"):
            parse("A @ B")
