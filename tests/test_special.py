"""Tests for PSKYLINESP (Lemma 1) and PSCREENSP (Lemma 2)."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms.special import (pscreen_single_point,
                                      pskyline_single_point)
from repro.core.dominance import Dominance
from repro.core.extension import ExtensionOrder
from repro.core.parser import parse
from repro.core.pgraph import PGraph


class TestPSkylineSinglePoint:
    @pytest.mark.parametrize("seed", range(8))
    def test_returned_point_is_maximal(self, seed, rng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(1, 6)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        dominance = Dominance(graph)
        ranks = nrng.integers(0, 5, size=(60, d)).astype(float)
        index = pskyline_single_point(ranks, graph)
        assert not dominance.dominators_mask(ranks, ranks[index]).any()

    def test_lexicographic_minimum_for_total_order(self):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = np.array([[1.0, 5.0], [1.0, 2.0], [3.0, 0.0]])
        assert pskyline_single_point(ranks, graph) == 1

    def test_empty_input_rejected(self):
        graph = PGraph.from_expression(parse("A"))
        with pytest.raises(ValueError):
            pskyline_single_point(np.empty((0, 1)), graph)

    def test_reusable_extension(self):
        graph = PGraph.from_expression(parse("A * B"))
        extension = ExtensionOrder(graph)
        ranks = np.array([[2.0, 2.0], [1.0, 1.0]])
        assert pskyline_single_point(ranks, graph, extension) == 1


class TestPScreenSinglePoint:
    def test_matches_scalar_dominance(self, rng, nrng):
        d = 4
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        dominance = Dominance(graph)
        point = nrng.integers(0, 4, size=d).astype(float)
        block = nrng.integers(0, 4, size=(50, d)).astype(float)
        survivors = pscreen_single_point(point, block, dominance)
        for i in range(block.shape[0]):
            assert survivors[i] == (not dominance.dominates(point,
                                                            block[i]))

    def test_empty_block(self):
        graph = PGraph.from_expression(parse("A"))
        dominance = Dominance(graph)
        result = pscreen_single_point(np.array([1.0]), np.empty((0, 1)),
                                      dominance)
        assert result.shape == (0,)
