"""Dominance semantics tests (Proposition 1).

The key test validates the bitmask/p-graph dominance machinery against
``semantic_compare`` -- a direct recursive evaluation of the Pareto and
prioritized accumulation *definitions* of Section 2.1, independent of
p-graphs.
"""

import numpy as np
import pytest

from conftest import as_dicts, random_expression, semantic_compare
from repro.core.dominance import Dominance
from repro.core.parser import parse
from repro.core.pgraph import PGraph


def oracle_pair(expr_text, u_values, v_values):
    expr = parse(expr_text)
    names = expr.attributes()
    graph = PGraph.from_expression(expr)
    dom = Dominance(graph)
    u = np.array(u_values, dtype=float)
    v = np.array(v_values, dtype=float)
    return dom, expr, names, u, v


class TestPaperExample1:
    """The four cars of Example 1; T encoded as manual=0 < automatic=1."""

    CARS = {
        1: (11500, 50000, 1),
        2: (11500, 60000, 0),
        3: (12000, 50000, 0),
        4: (12000, 60000, 0 + 1),
    }

    def maximal(self, expr_text):
        expr = parse(expr_text)
        graph = PGraph.from_expression(expr, names=["P", "M", "T"])
        dom = Dominance(graph)
        rows = {k: np.array(v, dtype=float) for k, v in self.CARS.items()}
        return {
            k for k, t in rows.items()
            if not any(dom.dominates(t2, t) for k2, t2 in rows.items()
                       if k2 != k)
        }

    def test_price_only_ignores_other_attributes(self):
        # P alone: t1, t2 share the best price; M, T are irrelevant but the
        # graph here spans only Var(pi)={P} -- emulate by full projection
        expr = parse("P")
        graph = PGraph.from_expression(expr)
        dom = Dominance(graph)
        prices = {k: np.array([v[0]], dtype=float)
                  for k, v in self.CARS.items()}
        maximal = {k for k, t in prices.items()
                   if not any(dom.dominates(o, t)
                              for k2, o in prices.items() if k2 != k)}
        assert maximal == {1, 2}

    def test_expression_2(self):
        assert self.maximal("(P * M) & T") == {1}

    def test_expression_3(self):
        assert self.maximal("(P & T) * M") == {1, 2}

    def test_expression_4(self):
        assert self.maximal("M & T & P") == {3}


class TestScalarKernels:
    def test_indistinguishable(self):
        dom, _, _, u, v = oracle_pair("A * B", (1, 2), (1, 2))
        assert dom.indistinguishable(u, v)
        assert not dom.dominates(u, v)
        assert dom.compare(u, v) == "="

    def test_pareto_incomparable(self):
        dom, _, _, u, v = oracle_pair("A * B", (1, 2), (2, 1))
        assert dom.compare(u, v) == "~"

    def test_prioritized_overrides(self):
        dom, _, _, u, v = oracle_pair("A & B", (1, 9), (2, 0))
        assert dom.compare(u, v) == ">"

    def test_better_masks(self):
        dom, _, _, u, v = oracle_pair("A * B * C", (1, 5, 3), (2, 4, 3))
        b_uv, b_vu = dom.better_masks(u, v)
        assert b_uv == 0b001
        assert b_vu == 0b010

    def test_top_mask(self):
        # Example 2 graph; disagree on W and T: only W is topmost since
        # W is an ancestor of T
        graph = PGraph.from_expression(parse("M & ((D & W) * P) & (T * H)"))
        dom = Dominance(graph)
        names = graph.names
        u = np.zeros(6)
        v = np.zeros(6)
        v[names.index("W")] = 1
        v[names.index("T")] = 1
        top = dom.top_mask(u, v)
        assert top == 1 << names.index("W")


class TestAgainstDefinitions:
    """Proposition 1 machinery == direct evaluation of the definitions."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_expressions_and_tuples(self, seed, rng, nrng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        for _ in range(25):
            d = rng.randint(1, 6)
            names = [f"A{i}" for i in range(d)]
            expr = random_expression(names, rng)
            graph = PGraph.from_expression(expr, names=names)
            dom = Dominance(graph)
            ranks = nrng.integers(0, 3, size=(12, d)).astype(float)
            dicts = as_dicts(ranks, names)
            for i in range(len(ranks)):
                for j in range(len(ranks)):
                    if i == j:
                        continue
                    expected = semantic_compare(expr, dicts[i], dicts[j])
                    got = dom.compare(ranks[i], ranks[j])
                    assert got == expected, (str(expr), i, j)


class TestBulkKernels:
    @pytest.mark.parametrize("seed", range(5))
    def test_masks_match_scalar(self, seed, rng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(1, 7)
        names = [f"A{i}" for i in range(d)]
        expr = random_expression(names, rng)
        graph = PGraph.from_expression(expr, names=names)
        dom = Dominance(graph)
        block = nrng.integers(0, 4, size=(40, d)).astype(float)
        target = block[0]
        dominators = dom.dominators_mask(block, target)
        dominated = dom.dominated_mask(block, target)
        for i in range(block.shape[0]):
            assert dominators[i] == dom.dominates(block[i], target)
            assert dominated[i] == dom.dominates(target, block[i])

    def test_screen_block_matches_pairwise(self, rng, nrng):
        d = 4
        names = [f"A{i}" for i in range(d)]
        expr = random_expression(names, rng)
        graph = PGraph.from_expression(expr, names=names)
        dom = Dominance(graph)
        block = nrng.integers(0, 3, size=(30, d)).astype(float)
        against = nrng.integers(0, 3, size=(25, d)).astype(float)
        survivors = dom.screen_block(block, against, chunk=7)
        for i in range(block.shape[0]):
            expected = not any(dom.dominates(against[j], block[i])
                               for j in range(against.shape[0]))
            assert survivors[i] == expected

    def test_screen_block_empty_inputs(self):
        graph = PGraph.from_expression(parse("A * B"))
        dom = Dominance(graph)
        empty = np.empty((0, 2))
        block = np.ones((3, 2))
        assert dom.screen_block(block, empty).all()
        assert dom.screen_block(empty, block).shape == (0,)

    def test_any_dominator(self):
        graph = PGraph.from_expression(parse("A & B"))
        dom = Dominance(graph)
        block = np.array([[2.0, 2.0], [1.0, 9.0]])
        assert dom.any_dominator(block, np.array([2.0, 3.0]))
        assert not dom.any_dominator(block, np.array([0.0, 0.0]))
