"""Tests for the greedy p-graph elicitor."""

import random

import numpy as np
import pytest

from repro.core.dominance import Dominance
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.elicitation import ExamplePair, elicit
from repro.sampling.random_pexpr import PExpressionSampler


def as_pair(names, superior, inferior):
    return ExamplePair(dict(zip(names, superior)),
                       dict(zip(names, inferior)))


class TestBasics:
    def test_single_priority_learned(self):
        names = ("price", "transmission")
        # superior wins on price, loses on transmission: needs the edge
        # price -> transmission
        pair = as_pair(names, (1, 1), (2, 0))
        result = elicit(names, [pair])
        assert result.complete
        assert result.graph.edges() == {("price", "transmission")}
        assert str(result.expression) == "price & transmission"

    def test_no_edges_needed_for_pareto_pairs(self):
        names = ("a", "b")
        pair = as_pair(names, (0, 0), (1, 1))  # componentwise win
        result = elicit(names, [pair])
        assert result.complete
        assert result.graph.num_edges == 0

    def test_indistinguishable_pair_infeasible(self):
        names = ("a", "b")
        pair = as_pair(names, (1, 1), (1, 1))
        result = elicit(names, [pair])
        assert result.infeasible == [0]

    def test_hopeless_pair_infeasible(self):
        names = ("a", "b")
        # the "superior" loses everywhere it differs: no p-graph helps
        pair = as_pair(names, (2, 1), (1, 1))
        result = elicit(names, [pair])
        assert result.infeasible == [0]

    def test_conflicting_pairs_leave_one_unsatisfied(self):
        names = ("a", "b")
        first = as_pair(names, (1, 2), (2, 1))   # wants a -> b
        second = as_pair(names, (2, 1), (1, 2))  # wants b -> a
        result = elicit(names, [first, second])
        assert len(result.satisfied) == 1
        assert len(result.unsatisfied) == 1
        assert result.graph.is_valid()

    def test_transitive_chain(self):
        names = ("a", "b", "c")
        pairs = [
            as_pair(names, (1, 2, 1), (2, 1, 1)),  # a -> b
            as_pair(names, (1, 1, 2), (1, 2, 1)),  # b -> c
        ]
        result = elicit(names, pairs)
        assert result.complete
        assert ("a", "c") in result.graph.edges()  # closure maintained

    def test_learned_graph_is_always_valid(self):
        names = tuple("abcd")
        rng = np.random.default_rng(5)
        pairs = [as_pair(names, rng.integers(0, 3, 4),
                         rng.integers(0, 3, 4)) for _ in range(15)]
        result = elicit(names, pairs)
        assert result.graph.is_valid()
        if result.graph.num_edges:
            assert result.expression is not None


class TestRecovery:
    @pytest.mark.parametrize("seed", range(6))
    def test_recovers_behaviour_of_hidden_graph(self, seed):
        """Pairs generated from a hidden p-graph must all be satisfiable,
        and the learned graph must reproduce them."""
        rng = random.Random(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(2, 5)
        names = tuple(f"A{i}" for i in range(d))
        hidden = PExpressionSampler(names).sample_graph(rng)
        dominance = Dominance(hidden)
        pairs = []
        while len(pairs) < 12:
            u = nrng.integers(0, 4, d).astype(float)
            v = nrng.integers(0, 4, d).astype(float)
            if dominance.dominates(u, v):
                pairs.append(as_pair(names, u, v))
        result = elicit(names, pairs)
        assert result.complete, (str(hidden), result.unsatisfied)
        learned = Dominance(result.graph)
        for pair in pairs:
            u = np.array([pair.superior[n] for n in names])
            v = np.array([pair.inferior[n] for n in names])
            assert learned.dominates(u, v)

    def test_learned_is_no_stronger_than_needed(self):
        # one Pareto-style example should not produce a lexicographic order
        names = ("x", "y", "z")
        pair = as_pair(names, (0, 0, 0), (1, 1, 1))
        result = elicit(names, [pair])
        assert result.graph.num_edges == 0


class TestExampleFromPaper:
    def test_car_feedback(self):
        """Example 1's story: the customer rejects t3/t4 in favour of t1
        -- the elicitor should discover that price outranks
        transmission."""
        names = ("P", "M", "T")
        t1 = (11500, 50000, 1)
        t3 = (12000, 50000, 0)
        t4 = (12000, 60000, 0)
        result = elicit(names, [as_pair(names, t1, t3),
                                as_pair(names, t1, t4)])
        assert result.complete
        assert ("P", "T") in result.graph.edges()
        learned = Dominance(result.graph)
        assert learned.dominates(np.array(t1, dtype=float),
                                 np.array(t3, dtype=float))
