"""End-to-end tests for the command-line interface."""

import csv

import pytest

from repro.cli import main


@pytest.fixture
def cars_csv(tmp_path):
    path = tmp_path / "cars.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["price", "mileage", "hp"])
        writer.writerows([
            [11500, 50000, 150],
            [11500, 60000, 190],
            [12000, 50000, 190],
            [12000, 60000, 150],
        ])
    return str(path)


class TestQuery:
    def test_basic_query(self, cars_csv, capsys):
        code = main(["query", cars_csv, "--preferring",
                     "lowest(price) * lowest(mileage)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 of 4 tuples are maximal" in out
        assert "11500" in out

    def test_highest_direction(self, cars_csv, capsys):
        code = main(["query", cars_csv, "--preferring",
                     "(lowest(price) & highest(hp)) * lowest(mileage)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 of 4" in out

    def test_algorithm_choice_and_stats(self, cars_csv, capsys):
        code = main(["query", cars_csv, "--preferring", "lowest(price)",
                     "--algorithm", "bnl", "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        assert "bnl" in captured.out
        assert "dominance tests" in captured.err

    def test_unknown_column(self, cars_csv, capsys):
        code = main(["query", cars_csv, "--preferring", "lowest(nope)"])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_empty_csv(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        code = main(["query", str(path), "--preferring", "lowest(a)"])
        assert code == 1

    def test_limit(self, cars_csv, capsys):
        code = main(["query", cars_csv, "--preferring",
                     "lowest(price) * lowest(mileage) * highest(hp)",
                     "--limit", "1"])
        assert code == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line and not line.startswith("#")]
        assert len(lines) == 2  # header + one row


class TestGenerate:
    @pytest.mark.parametrize("kind,columns", [
        ("gaussian", 4), ("independent", 4), ("correlated", 4),
        ("anticorrelated", 4), ("nba", 14), ("covertype", 10),
    ])
    def test_generate_kinds(self, kind, columns, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(["generate", kind, "--rows", "50", "--dims", "4",
                     "--out", str(out)])
        assert code == 0
        with open(out, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 51  # header + 50
        assert len(rows[0]) == columns

    def test_generate_to_stdout(self, capsys):
        code = main(["generate", "independent", "--rows", "3",
                     "--dims", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "A0,A1"

    def test_generated_csv_is_queryable(self, tmp_path, capsys):
        out = tmp_path / "g.csv"
        assert main(["generate", "gaussian", "--rows", "200",
                     "--dims", "3", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["query", str(out), "--preferring",
                     "lowest(A0) & (lowest(A1) * lowest(A2))"]) == 0
        assert "maximal" in capsys.readouterr().out


class TestSample:
    def test_sample_prints_expressions(self, capsys):
        code = main(["sample", "--dims", "5", "--count", "3",
                     "--seed", "1"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all("roots=" in line for line in lines)

    def test_sample_deterministic(self, capsys):
        main(["sample", "--dims", "6", "--count", "2", "--seed", "9"])
        first = capsys.readouterr().out
        main(["sample", "--dims", "6", "--count", "2", "--seed", "9"])
        assert capsys.readouterr().out == first


class TestBenchCommand:
    def test_bench_quick_workload(self, capsys):
        from repro.cli import main
        code = main(["bench", "--scale", "quick", "--workload",
                     "gaussian"])
        assert code == 0
        out = capsys.readouterr().out
        assert "osdc [ms]" in out and "bnl [ms]" in out
