"""The differential runner: clean registry runs, injected-bug detection,
emission and invariant checks."""

import numpy as np
import pytest

from repro.algorithms import REGISTRY, naive
from repro.algorithms.base import REGISTRY_INFO
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.verify.differential import Mismatch, run_case
from repro.verify.invariants import check_stats


def _case(n=80, d=3, seed=4):
    nrng = np.random.default_rng(seed)
    names = [f"A{i}" for i in range(d)]
    expr = " * ".join(names)
    graph = PGraph.from_expression(parse(expr), names=names)
    return nrng.integers(0, 6, size=(n, d)).astype(float), graph


class TestRunCase:
    def test_full_registry_agrees(self):
        ranks, graph = _case()
        assert run_case(ranks, graph) == []

    def test_detects_a_wrong_result_set(self):
        ranks, graph = _case()

        def broken(ranks, graph, *, stats=None, **options):
            correct = naive(ranks, graph)
            return correct[:-1]  # silently drop one maximal tuple

        mismatches = run_case(ranks, graph,
                              algorithms={"naive": naive,
                                          "broken": broken})
        assert [m.kind for m in mismatches] == ["result-set"]
        assert mismatches[0].algorithm == "broken"
        assert "missing" in mismatches[0].detail

    def test_detects_a_crash(self):
        ranks, graph = _case()

        def crashing(ranks, graph, *, stats=None, **options):
            raise RuntimeError("boom")

        mismatches = run_case(ranks, graph,
                              algorithms={"naive": naive,
                                          "crashing": crashing})
        assert [m.kind for m in mismatches] == ["error"]
        assert "boom" in mismatches[0].detail

    def test_detects_a_broken_baseline_via_the_oracle(self):
        ranks, graph = _case()

        def bad_baseline(ranks, graph, *, stats=None, **options):
            return naive(ranks, graph)[1:]

        mismatches = run_case(ranks, graph,
                              algorithms={"bad": bad_baseline},
                              baseline="bad")
        assert any(m.kind == "oracle" for m in mismatches)

    def test_unknown_baseline_raises(self):
        ranks, graph = _case()
        with pytest.raises(KeyError):
            run_case(ranks, graph, algorithms={"naive": naive},
                     baseline="nope")

    def test_progressive_emission_checked(self):
        """Progressive algorithms are checked for best-first order and
        prefix-consistency -- the registry's own iterators must pass."""
        ranks, graph = _case(n=150)
        progressive = {name for name, info in REGISTRY_INFO.items()
                       if info.progressive}
        assert progressive >= {"bbs", "sfs"}
        pool = {name: REGISTRY[name]
                for name in progressive | {"naive"}}
        assert run_case(ranks, graph, algorithms=pool) == []


class TestStatsInvariants:
    def test_negative_counter_flagged(self):
        from repro.algorithms.base import Stats
        info = REGISTRY_INFO["osdc"]
        stats = Stats()
        stats.dominance_tests = -1
        violations = check_stats(info, stats, n=10, v=5)
        assert any("negative" in v for v in violations)

    def test_eliminated_tuples_need_tests(self):
        from repro.algorithms.base import Stats
        info = REGISTRY_INFO["osdc"]
        assert info.counts_dominance
        violations = check_stats(info, Stats(), n=10, v=2)
        assert any("dominance tests" in v for v in violations)
        # a counting-exempt algorithm is not held to the bound
        assert check_stats(REGISTRY_INFO["bbs"], Stats(), n=10, v=2) == []

    def test_window_bound_enforced(self):
        from repro.algorithms.base import Stats
        info = REGISTRY_INFO["bnl"]
        assert info.bounded_window
        stats = Stats()
        stats.window_peak = 99
        stats.dominance_tests = 1000
        violations = check_stats(info, stats, n=10, v=5,
                                 options={"window_size": 8})
        assert any("window peak" in v for v in violations)
        stats.window_peak = 8
        assert check_stats(info, stats, n=10, v=5,
                           options={"window_size": 8}) == []

    def test_bounded_window_run_satisfies_the_invariant(self):
        ranks, graph = _case(n=200)
        assert run_case(
            ranks, graph,
            algorithms={"naive": naive, "bnl": REGISTRY["bnl"]},
            options={"bnl": {"window_size": 16}}) == []

    def test_registry_declarations_cover_known_families(self):
        assert REGISTRY_INFO["external-bnl"].external
        assert REGISTRY_INFO["parallel-osdc"].parallel
        assert REGISTRY_INFO["bbs"].progressive
        assert REGISTRY_INFO["bbs"].iterator is not None
        assert not REGISTRY_INFO["salsa"].counts_dominance
        assert "bounded-window" in REGISTRY_INFO["bnl"].guarantees


class TestMismatchDisplay:
    def test_str_is_informative(self):
        mismatch = Mismatch("result-set", "osdc", "missing [3]")
        assert "osdc" in str(mismatch)
        assert "result-set" in str(mismatch)
