"""Tests for output-size estimation (paper Section 8 / future work)."""

import numpy as np
import pytest

from repro.algorithms import osdc
from repro.core.expressions import sky
from repro.core.pgraph import PGraph
from repro.estimation.cardinality import (choose_algorithm,
                                          estimate_pskyline_size,
                                          harmonic_skyline_size,
                                          harmonic_skyline_size_approx)


class TestHarmonic:
    def test_one_dimension_is_one(self):
        # with a single attribute only the minimum is maximal
        assert harmonic_skyline_size(100, 1) == pytest.approx(1.0)

    def test_two_dimensions_is_harmonic_number(self):
        expected = sum(1.0 / i for i in range(1, 101))
        assert harmonic_skyline_size(100, 2) == pytest.approx(expected)

    def test_monotone_in_d(self):
        values = [harmonic_skyline_size(1000, d) for d in range(1, 6)]
        assert values == sorted(values)

    def test_matches_simulation(self, nrng):
        """Buchta's expectation vs. the empirical mean skyline size."""
        n, d, trials = 300, 3, 60
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(sky(names), names=names)
        sizes = [osdc(nrng.random((n, d)), graph).size
                 for _ in range(trials)]
        empirical = float(np.mean(sizes))
        expected = harmonic_skyline_size(n, d)
        assert empirical == pytest.approx(expected, rel=0.2)

    def test_approximation_tracks_exact(self):
        for d in (2, 3, 4):
            exact = harmonic_skyline_size(100_000, d)
            approx = harmonic_skyline_size_approx(100_000, d)
            assert approx == pytest.approx(exact, rel=0.6)

    def test_edge_cases(self):
        assert harmonic_skyline_size(0, 3) == 0.0
        assert harmonic_skyline_size_approx(1, 3) == 1.0
        with pytest.raises(ValueError):
            harmonic_skyline_size(10, 0)


class TestSamplingEstimator:
    def test_exact_when_sample_is_everything(self, nrng):
        d = 3
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(sky(names), names=names)
        ranks = nrng.random((50, d))
        truth = osdc(ranks, graph).size
        estimate = estimate_pskyline_size(ranks, graph, nrng,
                                          sample_size=50)
        assert estimate == pytest.approx(truth)

    def test_reasonable_on_larger_input(self, nrng):
        d = 3
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(sky(names), names=names)
        ranks = nrng.random((4000, d))
        truth = osdc(ranks, graph).size
        estimates = [estimate_pskyline_size(ranks, graph, nrng,
                                            sample_size=400)
                     for _ in range(10)]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.75)

    def test_empty_input(self, nrng):
        graph = PGraph.from_expression(sky(["A"]), names=["A"])
        assert estimate_pskyline_size(np.empty((0, 1)), graph, nrng) == 0.0


class TestChooser:
    def test_small_output_picks_bnl(self, nrng):
        from repro.core.parser import parse
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(parse(" & ".join(names)),
                                       names=names)
        ranks = nrng.random((5000, 4))  # lexicographic: v = 1
        assert choose_algorithm(ranks, graph, nrng) == "bnl"

    def test_large_output_picks_osdc(self, nrng):
        names = [f"A{i}" for i in range(6)]
        graph = PGraph.from_expression(sky(names), names=names)
        ranks = nrng.random((3000, 6))  # 6-d skyline: big v
        assert choose_algorithm(ranks, graph, nrng) == "osdc"

    def test_empty_input(self, nrng):
        graph = PGraph.from_expression(sky(["A"]), names=["A"])
        assert choose_algorithm(np.empty((0, 1)), graph, nrng) == "bnl"


class TestExtrapolation:
    def test_ballpark_on_ci_skyline(self, nrng):
        from repro.estimation.cardinality import estimate_by_extrapolation
        names = [f"A{i}" for i in range(3)]
        graph = PGraph.from_expression(sky(names), names=names)
        ranks = nrng.random((8000, 3))
        truth = osdc(ranks, graph).size
        estimate = estimate_by_extrapolation(ranks, graph, nrng)
        assert 0.3 * truth < estimate < 3.0 * truth

    def test_tiny_output_detected(self, nrng):
        from repro.core.parser import parse
        from repro.estimation.cardinality import estimate_by_extrapolation
        names = [f"A{i}" for i in range(3)]
        graph = PGraph.from_expression(parse(" & ".join(names)),
                                       names=names)
        ranks = nrng.random((8000, 3))  # lexicographic: v = 1
        estimate = estimate_by_extrapolation(ranks, graph, nrng)
        assert estimate < 20

    def test_empty_input(self, nrng):
        from repro.estimation.cardinality import estimate_by_extrapolation
        graph = PGraph.from_expression(sky(["A"]), names=["A"])
        assert estimate_by_extrapolation(np.empty((0, 1)), graph,
                                         nrng) == 0.0
