"""Empirical complexity checks (Theorem 1's shape on work counters)."""

import numpy as np
import pytest

from repro.algorithms import naive
from repro.bench.complexity import (growth_exponent, staircase_dataset,
                                    sweep_input_size, sweep_output_size)
from repro.core.expressions import sky
from repro.core.pgraph import PGraph


def sky_graph(d):
    names = [f"A{i}" for i in range(d)]
    return PGraph.from_expression(sky(names), names=names)


class TestStaircase:
    @pytest.mark.parametrize("v", [1, 2, 7, 40])
    def test_skyline_size_is_exactly_v(self, v, nrng):
        graph = sky_graph(3)
        data = staircase_dataset(300, v, 3, nrng)
        assert naive(data, graph).size == v

    def test_bulk_dominated_under_any_expression(self, nrng):
        from repro.core.parser import parse
        data = staircase_dataset(200, 5, 3, nrng)
        graph = PGraph.from_expression(parse("A0 & (A1 * A2)"),
                                       names=["A0", "A1", "A2"])
        result = naive(data, graph)
        assert result.max() < 5  # only staircase tuples survive

    def test_validation(self, nrng):
        with pytest.raises(ValueError):
            staircase_dataset(10, 0, 3, nrng)
        with pytest.raises(ValueError):
            staircase_dataset(10, 11, 3, nrng)
        with pytest.raises(ValueError):
            staircase_dataset(10, 2, 1, nrng)


class TestGrowthExponent:
    def test_known_orders(self):
        xs = [100, 200, 400, 800]
        assert growth_exponent(xs, xs) == pytest.approx(1.0)
        assert growth_exponent(xs, [x * x for x in xs]) == \
            pytest.approx(2.0)

    def test_positive_inputs_required(self):
        with pytest.raises(ValueError):
            growth_exponent([1, 2], [0, 1])


class TestTheorem1Shape:
    def test_osdc_linear_in_n_at_constant_v(self, nrng):
        """Theorem 1 with v fixed: work must grow ~linearly in n."""
        graph = sky_graph(4)
        measured = sweep_input_size("osdc", graph,
                                    sizes=(4_000, 8_000, 16_000, 32_000),
                                    v=8, rng=nrng)
        exponent = growth_exponent([n for n, _ in measured],
                                   [w for _, w in measured])
        assert exponent < 1.3, measured

    def test_osdc_subquadratic_in_v_at_constant_n(self, nrng):
        """Growing v at fixed n: per-extra-output cost must stay small
        (polylog factors, not another factor of n)."""
        graph = sky_graph(4)
        measured = sweep_output_size("osdc", graph, n=20_000,
                                     v_values=(4, 16, 64, 256), rng=nrng)
        assert [v for v, _ in measured] == [4, 16, 64, 256]
        exponent = growth_exponent([v for v, _ in measured],
                                   [w for _, w in measured])
        # BNL-style algorithms are ~1 here *per window entry*, i.e. the
        # work is Theta(n * v); OSDC's total work must grow far slower
        assert exponent < 0.85, measured

    def test_bnl_work_grows_with_v_much_faster(self, nrng):
        """Contrast: BNL's window makes its work ~n*v."""
        graph = sky_graph(4)
        osdc_measured = sweep_output_size("osdc", graph, n=8_000,
                                          v_values=(8, 128), rng=nrng)
        bnl_measured = sweep_output_size("bnl", graph, n=8_000,
                                         v_values=(8, 128), rng=nrng)
        osdc_growth = osdc_measured[1][1] / osdc_measured[0][1]
        bnl_growth = bnl_measured[1][1] / bnl_measured[0][1]
        assert bnl_growth > 2 * osdc_growth
