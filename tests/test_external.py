"""Tests for the simulated external-memory substrate and algorithms."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import Stats, naive
from repro.algorithms.external import external_bnl, external_sfs, external_sort
from repro.core.extension import ExtensionOrder
from repro.core.pgraph import PGraph
from repro.storage.blocks import PagedFile, StorageManager


class TestPagedFile:
    def test_append_and_scan(self):
        storage = StorageManager(page_size=4)
        handle = storage.create(arity=2)
        handle.append_rows(np.arange(20.0).reshape(10, 2))
        handle.close_writes()
        assert handle.num_pages == 3  # 4 + 4 + 2 rows
        assert handle.num_rows == 10
        rows = np.vstack(list(handle.scan()))
        assert rows.tolist() == np.arange(20.0).reshape(10, 2).tolist()

    def test_io_counters(self):
        storage = StorageManager(page_size=4)
        handle = storage.from_matrix(np.ones((10, 2)))
        assert storage.counter.writes == 3
        list(handle.scan())
        assert storage.counter.reads == 3
        assert storage.counter.total == 6

    def test_arity_enforced(self):
        storage = StorageManager(page_size=4)
        handle = storage.create(arity=2)
        with pytest.raises(ValueError, match="arity"):
            handle.append_rows(np.ones((1, 3)))

    def test_read_before_flush_rejected(self):
        storage = StorageManager(page_size=4)
        handle = storage.create(arity=1)
        handle.append_rows(np.ones((1, 1)))
        with pytest.raises(RuntimeError):
            handle.num_pages

    def test_single_row_append(self):
        storage = StorageManager(page_size=2)
        handle = storage.create(arity=2)
        for value in range(5):
            handle.append_rows(np.array([value, value], dtype=float))
        handle.close_writes()
        assert handle.num_rows == 5

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PagedFile("x", 0, StorageManager().counter, 1)


class TestExternalSort:
    def test_sorts_by_extension_keys(self, rng, nrng):
        d = 4
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        extension = ExtensionOrder(graph)
        ranks = nrng.integers(0, 6, size=(200, d)).astype(float)
        keys = extension.keys(ranks)
        storage = StorageManager(page_size=16)
        ids = np.arange(200.0).reshape(-1, 1)
        source = storage.from_matrix(np.hstack([ranks, ids]))
        result = external_sort(source, keys, storage, buffer_pages=3)
        rows = np.vstack(list(result.scan()))
        assert rows.shape[0] == 200
        order = rows[:, -1].astype(int)
        key_rows = [tuple(keys[i]) for i in order]
        assert key_rows == sorted(key_rows)
        assert sorted(order.tolist()) == list(range(200))

    def test_buffer_pages_validated(self):
        storage = StorageManager(page_size=4)
        source = storage.from_matrix(np.ones((4, 2)))
        with pytest.raises(ValueError):
            external_sort(source, np.ones((4, 1)), storage, buffer_pages=1)


@pytest.mark.parametrize("seed", range(6))
def test_external_algorithms_match_oracle(seed, rng, nrng):
    rng.seed(seed)
    nrng = np.random.default_rng(seed)
    d = rng.randint(1, 5)
    names = [f"A{i}" for i in range(d)]
    graph = PGraph.from_expression(random_expression(names, rng),
                                   names=names)
    n = rng.randint(1, 600)
    ranks = nrng.integers(0, rng.choice([3, 25]), size=(n, d)).astype(float)
    expected = set(naive(ranks, graph).tolist())
    bnl_stats, sfs_stats = Stats(), Stats()
    got_bnl = set(external_bnl(ranks, graph, stats=bnl_stats,
                               page_size=32, window_pages=1).tolist())
    got_sfs = set(external_sfs(ranks, graph, stats=sfs_stats,
                               page_size=32, buffer_pages=3).tolist())
    assert got_bnl == expected
    assert got_sfs == expected
    assert bnl_stats.io_reads > 0 and bnl_stats.io_writes > 0
    assert sfs_stats.io_reads > 0 and sfs_stats.io_writes > 0


def test_external_bnl_needs_multiple_passes_when_window_is_tiny(nrng):
    from repro.core.parser import parse
    graph = PGraph.from_expression(parse("A * B"))
    # anti-correlated: every tuple is maximal, so the 1-page window
    # overflows and BNL must iterate
    values = np.arange(100.0)
    ranks = np.column_stack([values, -values])
    stats = Stats()
    result = external_bnl(ranks, graph, stats=stats, page_size=8,
                          window_pages=1)
    assert result.size == 100
    assert stats.passes > 1
