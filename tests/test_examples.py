"""Smoke tests: every example script must run to completion.

Each example is executed as a subprocess with small input sizes; a
non-zero exit or a traceback is a failure.  (The figure-reproduction
script is exercised separately by the benchmark suite.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("car_dealership.py", ["400"]),
    ("nba_analysis.py", ["2000"]),
    ("preference_sampling.py", []),
    ("preference_sql_demo.py", []),
    ("streaming_updates.py", ["3000"]),
    ("external_memory.py", ["8000"]),
    ("elicitation_demo.py", []),
]


@pytest.mark.parametrize("script,arguments",
                         CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, arguments):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *arguments],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Traceback" not in result.stderr


def test_all_examples_are_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    covered = {script for script, _ in CASES} | {"reproduce_figures.py"}
    assert scripts == covered, scripts ^ covered
