"""Cross-query batch fusion: correctness, counters and batch bugfixes."""

import random

import numpy as np
import pytest

from repro.algorithms.base import Stats
from repro.core.dominance import (KERNELS, Dominance, forced_kernel,
                                  screen_block_multi)
from repro.core.fusion import FusionPlan, permute_preference
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.core.query import p_skyline, p_skyline_batch
from repro.core.relation import Relation
from repro.core.sharding import ShardedRelation
from repro.engine.errors import QueryTimeout
from repro.sampling.random_pexpr import sample_pexpression
from repro.sql import BatchExecutionError, PreferenceSQL


def _correlated_batch(names, rng, count):
    """Expressions biased toward shared attribute subsets, duplicates
    and containment-related pairs -- the elicitation workload shape."""
    expressions = []
    subsets = [tuple(sorted(rng.sample(names, rng.randint(2, len(names)))))
               for _ in range(3)]
    for _ in range(count):
        subset = list(rng.choice(subsets))
        roll = rng.random()
        if roll < 0.25 and expressions:
            expressions.append(rng.choice(expressions))  # exact duplicate
        elif roll < 0.45:
            expressions.append(" & ".join(subset))       # chain
        elif roll < 0.6:
            expressions.append(" * ".join(subset))       # Pareto
        else:
            expressions.append(
                str(sample_pexpression(subset, rng)))
    return expressions


class TestScreenBlockMulti:
    def test_matches_independent_screens(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 6, size=(500, 5)).astype(float)
        names = [f"A{j}" for j in range(5)]
        graphs = [
            PGraph.from_expression(parse("A0 & A1 * A2 & A3 * A4"),
                                   names=names),
            PGraph.from_expression(parse("A0 * A1 * A2 * A3 * A4"),
                                   names=names),
            PGraph.from_expression(parse("A4 & A3 & A2 & A1 & A0"),
                                   names=names),
        ]
        dominances = [Dominance(graph) for graph in graphs]
        counters = {}
        masks = screen_block_multi(dominances, rows, counters=counters)
        for dominance, mask in zip(dominances, masks):
            assert np.array_equal(
                mask, dominance.screen_block(rows, rows))
        assert counters["mask_misses"] >= 1
        # every packed block is replayed for the two other graphs
        assert counters["mask_hits"] >= 2 * counters["mask_misses"] - 2

    def test_empty_inputs(self):
        assert screen_block_multi([], np.zeros((4, 2))) == []
        dom = Dominance(PGraph.empty(["A0", "A1"]))
        masks = screen_block_multi([dom], np.empty((0, 2)))
        assert masks[0].shape == (0,)


class TestPermutePreference:
    def test_permutation_preserves_dominance(self):
        rng = random.Random(11)
        names = ["A0", "A1", "A2", "A3"]
        rows = np.random.default_rng(5).integers(
            0, 5, size=(60, 4)).astype(float)
        for _ in range(20):
            graph = PGraph.from_expression(
                sample_pexpression(names, rng), names=names)
            sigma = list(range(4))
            rng.shuffle(sigma)
            permuted = permute_preference(graph, sigma)
            direct = Dominance(graph).screen_block(rows, rows)
            shuffled = np.ascontiguousarray(rows[:, sigma])
            via = Dominance(permuted).screen_block(shuffled, shuffled)
            assert np.array_equal(direct, via)


class TestFusedBatchProperty:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_matches_independent_calls(self, kernel):
        rng = random.Random(kernel)
        names = [f"A{j}" for j in range(5)]
        nrng = np.random.default_rng(17)
        for round_index in range(3):
            rows = nrng.integers(0, 8, size=(300, 5)).astype(float)
            expressions = _correlated_batch(names, rng, 12)
            with forced_kernel(kernel):
                stats = Stats()
                fused = p_skyline_batch(rows, expressions, stats=stats)
                independent = [p_skyline(rows, expression)
                               for expression in expressions]
            for got, want in zip(fused, independent):
                assert np.array_equal(np.asarray(got), want)
            fusion = stats.extra["fusion"]
            assert fusion["queries"] == 12
            assert fusion["dedup_hits"] == \
                fusion["queries"] - fusion["distinct"]

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_sharded_batches_match_flat(self, shards):
        rng = random.Random(shards)
        names = [f"A{j}" for j in range(4)]
        rows = np.random.default_rng(23).integers(
            0, 6, size=(200, 4)).astype(float)
        flat = Relation.from_array(rows, names=names)
        sharded = ShardedRelation.from_array(rows, names=names,
                                             shards=shards)
        expressions = _correlated_batch(names, rng, 8)
        fused = p_skyline_batch(sharded, expressions)
        reference = p_skyline_batch(flat, expressions)
        for got, want in zip(fused, reference):
            assert np.array_equal(got.ranks, want.ranks)

    def test_auto_batches_are_fused(self):
        rows = np.random.default_rng(29).integers(
            0, 5, size=(400, 3)).astype(float)
        expressions = ["A0 & A1 * A2", "A0 & A1 * A2", "A0 * A1 * A2"]
        stats = Stats()
        fused = p_skyline_batch(rows, expressions, algorithm="auto",
                                stats=stats)
        for got, expression in zip(fused, expressions):
            assert np.array_equal(
                np.asarray(got), p_skyline(rows, expression))
        fusion = stats.extra["fusion"]
        # the duplicate dedups and the planner ran once per group base
        assert fusion["dedup_hits"] == 1
        assert fusion["base_evaluations"] < fusion["queries"]

    def test_duplicate_and_containment_counters(self):
        rows = np.random.default_rng(31).integers(
            0, 6, size=(300, 3)).astype(float)
        expressions = ["A0 & A1 & A2", "A0 & A1 & A2",  # duplicates
                       "A0 * A1 * A2",                  # contained base
                       "A0 & A1 * A2"]                  # shares the base
        stats = Stats()
        fused = p_skyline_batch(rows, expressions, stats=stats)
        for got, expression in zip(fused, expressions):
            assert np.array_equal(
                np.asarray(got), p_skyline(rows, expression))
        fusion = stats.extra["fusion"]
        assert fusion["queries"] == 4
        assert fusion["distinct"] == 3
        assert fusion["dedup_hits"] == 1
        assert fusion["groups"] == 1
        assert fusion["base_evaluations"] == 1  # the Pareto base
        assert fusion["screened"] == 2
        assert fusion["mask_misses"] >= 1
        assert fusion["mask_hits"] >= 1


class TestExecuteBatchFusion:
    def _engine(self, rows=160, seed=41):
        from repro.core.attributes import lowest

        rng = np.random.default_rng(seed)
        records = [{"price": float(p), "mileage": float(m),
                    "age": float(a)}
                   for p, m, a in rng.integers(0, 30, size=(rows, 3))]
        relation = Relation.from_records(
            records, [lowest("price"), lowest("mileage"), lowest("age")])
        engine = PreferenceSQL()
        engine.register("cars", relation)
        return engine

    def test_fused_batch_matches_per_statement(self):
        engine = self._engine()
        statements = [
            "SELECT * FROM cars PREFERRING lowest(price) & lowest(mileage)",
            "SELECT * FROM cars PREFERRING lowest(price) & lowest(mileage)",
            "SELECT * FROM cars PREFERRING lowest(price) * lowest(mileage)",
            "SELECT * FROM cars PREFERRING highest(price) * lowest(age)",
            "SELECT price FROM cars PREFERRING lowest(price) "
            "* lowest(mileage) TOP 5",
            "SELECT * FROM cars WHERE age <= 20 PREFERRING lowest(price)",
        ]
        stats = Stats()
        fused = engine.execute_batch(statements, stats=stats)
        unfused = [engine.execute(statement) for statement in statements]
        for got, want in zip(fused, unfused):
            assert got.names == want.names
            assert np.array_equal(got.ranks, want.ranks)
        fusion = stats.extra["fusion"]
        # statements 1+2 duplicate, and the TOP statement shares its
        # preference with statement 3 (TOP applies per statement)
        assert fusion["dedup_hits"] == 2
        assert fusion["queries"] == 5  # the WHERE statement stays out

    def test_direction_overrides_do_not_fuse_into_wrong_matrix(self):
        engine = self._engine()
        statements = [
            "SELECT * FROM cars PREFERRING lowest(price) & lowest(age)",
            "SELECT * FROM cars PREFERRING highest(price) & lowest(age)",
        ]
        fused = engine.execute_batch(statements)
        unfused = [engine.execute(statement) for statement in statements]
        for got, want in zip(fused, unfused):
            assert np.array_equal(got.ranks, want.ranks)

    def test_timeout_mid_batch_preserves_partials(self, monkeypatch):
        engine = self._engine()
        statements = [
            f"SELECT * FROM cars WHERE price <= {10 + i} "
            "PREFERRING lowest(price) & lowest(mileage)"
            for i in range(5)
        ]  # WHERE keeps them sequential, in statement order
        original = PreferenceSQL._execute_parsed
        calls = {"count": 0}

        def failing(self, query, **kwargs):
            if calls["count"] == 3:
                raise QueryTimeout("deadline exceeded mid-batch")
            calls["count"] += 1
            return original(self, query, **kwargs)

        monkeypatch.setattr(PreferenceSQL, "_execute_parsed", failing)
        with pytest.raises(BatchExecutionError) as info:
            engine.execute_batch(statements)
        error = info.value
        assert error.failed_index == 3
        assert error.completed == 3
        assert [result is not None for result in error.results] == \
            [True, True, True, False, False]
        assert isinstance(error.cause, QueryTimeout)
        assert error.__cause__ is error.cause
        for index, result in enumerate(error.results[:3]):
            monkeypatch.setattr(PreferenceSQL, "_execute_parsed", original)
            want = engine.execute(statements[index])
            assert np.array_equal(result.ranks, want.ranks)

    def test_batch_error_on_bad_statement_keeps_order(self):
        engine = self._engine()
        statements = [
            "SELECT * FROM cars WHERE age <= 25 PREFERRING lowest(price)",
            "SELECT nope FROM cars WHERE age <= 25 "
            "PREFERRING lowest(price)",
        ]
        with pytest.raises(BatchExecutionError) as info:
            engine.execute_batch(statements)
        assert info.value.failed_index == 1
        assert info.value.completed == 1
