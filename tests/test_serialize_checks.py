"""Tests for serialisation and result verification utilities."""

import json

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import osdc
from repro.core.attributes import highest, lowest, ranked
from repro.core.checks import VerificationError, verify_pskyline
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.core.relation import Relation
from repro.core.serialize import (expression_from_json, expression_to_json,
                                  load_relation, pgraph_from_json,
                                  pgraph_to_json, save_relation)


class TestExpressionJson:
    def test_round_trip_random(self, rng):
        for _ in range(40):
            names = [f"A{i}" for i in range(rng.randint(1, 7))]
            expr = random_expression(names, rng)
            payload = expression_to_json(expr)
            # must survive an actual JSON encode/decode cycle
            rebuilt = expression_from_json(json.loads(json.dumps(payload)))
            assert rebuilt == expr

    def test_known_encoding(self):
        payload = expression_to_json(parse("(P & T) * M"))
        assert payload["op"] == "pareto"
        assert payload["children"][0] == {
            "op": "prioritized",
            "children": [{"op": "att", "name": "P"},
                         {"op": "att", "name": "T"}],
        }

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            expression_from_json({"op": "magic"})


class TestPGraphJson:
    def test_round_trip(self, rng):
        for _ in range(30):
            names = [f"A{i}" for i in range(rng.randint(1, 7))]
            graph = PGraph.from_expression(random_expression(names, rng),
                                           names=names)
            rebuilt = pgraph_from_json(
                json.loads(json.dumps(pgraph_to_json(graph))))
            assert rebuilt == graph


class TestRelationStorage:
    def test_round_trip(self, tmp_path):
        schema = [lowest("price"), highest("hp"),
                  ranked("t", ["manual", "automatic"])]
        relation = Relation.from_records(
            [{"price": 10, "hp": 100, "t": "manual"},
             {"price": 20, "hp": 150, "t": "automatic"}],
            schema,
        )
        path = str(tmp_path / "cars.npz")
        save_relation(relation, path)
        loaded = load_relation(path)
        assert loaded.names == relation.names
        assert np.array_equal(loaded.ranks, relation.ranks)
        assert loaded.schema[2].order == ("manual", "automatic")
        records = loaded.to_records()
        assert records[1]["t"] == "automatic"
        assert records[1]["hp"] == 150


class TestVerification:
    def test_accepts_correct_result(self, rng, nrng):
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 5, size=(200, 4)).astype(float)
        verify_pskyline(ranks, graph, osdc(ranks, graph))

    def test_rejects_missing_tuple(self, nrng):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = nrng.integers(0, 5, size=(100, 2)).astype(float)
        result = osdc(ranks, graph)
        with pytest.raises(VerificationError, match="misses"):
            verify_pskyline(ranks, graph, result[:-1])

    def test_rejects_dominated_tuple(self, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        with pytest.raises(VerificationError, match="dominated"):
            verify_pskyline(ranks, graph, np.array([0, 1]))

    def test_rejects_malformed_indices(self, nrng):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = nrng.random((10, 2))
        with pytest.raises(VerificationError, match="duplicate"):
            verify_pskyline(ranks, graph, np.array([1, 1]))
        with pytest.raises(VerificationError, match="out-of-range"):
            verify_pskyline(ranks, graph, np.array([99]))
        with pytest.raises(VerificationError, match="sorted"):
            verify_pskyline(ranks, graph, np.array([3, 1]))

    def test_fuzz_all_algorithms(self, rng, nrng):
        from repro.algorithms import REGISTRY
        for trial in range(10):
            d = rng.randint(1, 5)
            names = [f"A{i}" for i in range(d)]
            graph = PGraph.from_expression(random_expression(names, rng),
                                           names=names)
            ranks = nrng.integers(0, 4, size=(120, d)).astype(float)
            for name, algorithm in REGISTRY.items():
                verify_pskyline(ranks, graph, algorithm(ranks, graph))
