"""Unit tests for the relation substrate."""

import numpy as np
import pytest

from repro.core.attributes import highest, lowest, ranked
from repro.core.relation import Relation


@pytest.fixture
def cars():
    schema = [lowest("price"), lowest("mileage"),
              ranked("transmission", ["manual", "automatic"])]
    return Relation.from_records(
        [
            {"price": 11500, "mileage": 50000, "transmission": "automatic"},
            {"price": 11500, "mileage": 60000, "transmission": "manual"},
            {"price": 12000, "mileage": 50000, "transmission": "manual"},
        ],
        schema,
    )


class TestConstruction:
    def test_from_dict_records(self, cars):
        assert len(cars) == 3
        assert cars.arity == 3
        assert cars.names == ("price", "mileage", "transmission")

    def test_from_tuple_records(self):
        relation = Relation.from_records(
            [(1, 2), (3, 4)], [lowest("a"), lowest("b")])
        assert relation.column("a").tolist() == [1.0, 3.0]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            Relation.from_records([(1, 2, 3)], [lowest("a"), lowest("b")])

    def test_missing_attribute_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            Relation.from_records([{"a": 1}], [lowest("a"), lowest("b")])

    def test_empty_records(self):
        relation = Relation.from_records([], [lowest("a")])
        assert len(relation) == 0
        assert relation.to_records() == []

    def test_from_array_defaults(self):
        relation = Relation.from_array(np.ones((2, 3)))
        assert relation.names == ("A0", "A1", "A2")

    def test_from_array_highest_encoding(self):
        relation = Relation.from_array(
            np.array([[1.0], [2.0]]), schema=[highest("x")])
        assert relation.ranks[:, 0].tolist() == [-1.0, -2.0]

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Relation([lowest("a")], np.array([[np.nan]]))

    def test_duplicate_schema_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Relation([lowest("a"), lowest("a")], np.ones((1, 2)))

    def test_ranks_are_read_only(self, cars):
        with pytest.raises(ValueError):
            cars.ranks[0, 0] = 0.0


class TestAccessors:
    def test_encoding_of_ranked_column(self, cars):
        assert cars.column("transmission").tolist() == [1.0, 0.0, 0.0]

    def test_unknown_column(self, cars):
        with pytest.raises(KeyError):
            cars.column("nope")

    def test_take_preserves_values(self, cars):
        subset = cars.take([2, 0])
        records = subset.to_records()
        assert records[0]["price"] == 12000
        assert records[0]["transmission"] == "manual"
        assert records[1]["transmission"] == "automatic"

    def test_project(self, cars):
        projected = cars.project(["mileage", "price"])
        assert projected.names == ("mileage", "price")
        assert projected.column("price").tolist() == \
            cars.column("price").tolist()

    def test_to_records_round_trip(self, cars):
        rebuilt = Relation.from_records(cars.to_records(), cars.schema)
        assert np.array_equal(rebuilt.ranks, cars.ranks)


class TestCsv:
    def test_csv_round_trip(self, cars, tmp_path):
        path = tmp_path / "cars.csv"
        records = cars.to_records()
        import csv
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=cars.names)
            writer.writeheader()
            writer.writerows(records)
        loaded = Relation.from_csv(str(path), cars.schema)
        assert np.array_equal(loaded.ranks, cars.ranks)

    def test_csv_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a\n1\n")
        with pytest.raises(ValueError, match="missing column"):
            Relation.from_csv(str(path), [lowest("a"), lowest("b")])
