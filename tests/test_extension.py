"""Tests for the weak-order extension ``≻ext`` (Section 6, Theorem 3)."""

import numpy as np
import pytest

from conftest import random_expression
from repro.core.dominance import Dominance
from repro.core.extension import ExtensionOrder
from repro.core.parser import parse
from repro.core.pgraph import PGraph


class TestKeys:
    def test_depth_buckets(self):
        graph = PGraph.from_expression(parse("A & (B * C) & D"))
        extension = ExtensionOrder(graph)
        assert extension.levels == 3
        ranks = np.array([[1.0, 2.0, 3.0, 4.0]])
        keys = extension.keys(ranks)
        assert keys.tolist() == [[1.0, 5.0, 4.0]]

    def test_skyline_has_single_level(self):
        graph = PGraph.from_expression(parse("A * B * C"))
        extension = ExtensionOrder(graph)
        assert extension.levels == 1
        keys = extension.keys(np.array([[1.0, 2.0, 3.0]]))
        assert keys.tolist() == [[6.0]]


class TestTheorem3:
    """If ``u ≻_pi v`` then ``u ≻ext v`` -- on random inputs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_extension_contains_preference(self, seed, rng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(1, 7)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        dominance = Dominance(graph)
        extension = ExtensionOrder(graph)
        ranks = nrng.integers(0, 4, size=(30, d)).astype(float)
        for i in range(ranks.shape[0]):
            for j in range(ranks.shape[0]):
                if dominance.dominates(ranks[i], ranks[j]):
                    assert extension.strictly_precedes(ranks[i], ranks[j])

    def test_extension_is_weak_order(self, rng, nrng):
        # transitivity of indifference: equal key vectors
        d = 4
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        extension = ExtensionOrder(graph)
        ranks = nrng.integers(0, 2, size=(20, d)).astype(float)
        keys = extension.keys(ranks)
        for i in range(20):
            for j in range(20):
                u_precedes = extension.strictly_precedes(ranks[i], ranks[j])
                key_less = tuple(keys[i]) < tuple(keys[j])
                assert u_precedes == key_less


class TestArgsort:
    @pytest.mark.parametrize("seed", range(4))
    def test_no_tuple_dominated_by_later(self, seed, rng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(2, 6)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        dominance = Dominance(graph)
        extension = ExtensionOrder(graph)
        ranks = nrng.integers(0, 3, size=(40, d)).astype(float)
        order = extension.argsort(ranks)
        assert sorted(order.tolist()) == list(range(40))
        for a in range(40):
            for b in range(a + 1, 40):
                assert not dominance.dominates(ranks[order[b]],
                                               ranks[order[a]])

    def test_argsort_is_stable(self):
        graph = PGraph.from_expression(parse("A"))
        extension = ExtensionOrder(graph)
        ranks = np.array([[1.0], [0.0], [1.0], [0.0]])
        assert extension.argsort(ranks).tolist() == [1, 3, 0, 2]
