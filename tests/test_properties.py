"""Property-based tests (hypothesis) for the paper's core invariants.

Strategies generate arbitrary p-expressions and duplicate-heavy rank
matrices; properties cover:

* ``≻_pi`` is a strict partial order (irreflexive, asymmetric, transitive);
* Proposition 1's p-graph dominance equals the recursive evaluation of the
  Section 2.1 operator definitions;
* Proposition 2: edge containment implies preference containment, hence
  ``M_pi(D) ⊆ M_sky(D)``;
* Theorem 3: ``≻ext`` extends ``≻_pi`` and is a weak order;
* Theorem 4: expression p-graphs are transitive + envelope, and the
  series-parallel decomposition round-trips;
* all algorithms return exactly ``M_pi(D)``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from conftest import as_dicts, semantic_compare
from repro.algorithms import REGISTRY, naive
from repro.core.dominance import Dominance
from repro.core.extension import ExtensionOrder
from repro.core.expressions import Att, PExpr, pareto, prioritized, sky
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.sampling.decompose import decompose


@st.composite
def p_expressions(draw, max_attributes=6):
    """An arbitrary p-expression over A0..A{k-1}."""
    k = draw(st.integers(min_value=1, max_value=max_attributes))
    names = [f"A{i}" for i in range(k)]
    permutation = draw(st.permutations(names))

    def build(part: list[str]) -> PExpr:
        if len(part) == 1:
            return Att(part[0])
        split = draw(st.integers(min_value=1, max_value=len(part) - 1))
        operator = draw(st.sampled_from([pareto, prioritized]))
        return operator(build(part[:split]), build(part[split:]))

    return build(list(permutation))


@st.composite
def expression_and_ranks(draw, max_attributes=5, max_rows=40,
                         max_value=3):
    expr = draw(p_expressions(max_attributes=max_attributes))
    d = len(expr.attributes())
    n = draw(st.integers(min_value=0, max_value=max_rows))
    rows = draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=max_value),
                 min_size=d, max_size=d),
        min_size=n, max_size=n,
    ))
    ranks = np.array(rows, dtype=np.float64).reshape(n, d)
    return expr, ranks


@settings(max_examples=60, deadline=None)
@given(data=expression_and_ranks(max_rows=14))
def test_preference_is_strict_partial_order(data):
    expr, ranks = data
    names = expr.attributes()
    graph = PGraph.from_expression(expr, names=names)
    dom = Dominance(graph)
    n = ranks.shape[0]
    for i in range(n):
        assert not dom.dominates(ranks[i], ranks[i])  # irreflexive
        for j in range(n):
            if dom.dominates(ranks[i], ranks[j]):
                assert not dom.dominates(ranks[j], ranks[i])  # asymmetric
                for k in range(n):
                    if dom.dominates(ranks[j], ranks[k]):
                        assert dom.dominates(ranks[i], ranks[k])  # transitive


@settings(max_examples=60, deadline=None)
@given(data=expression_and_ranks(max_rows=12))
def test_pgraph_dominance_equals_definitions(data):
    expr, ranks = data
    names = expr.attributes()
    graph = PGraph.from_expression(expr, names=names)
    dom = Dominance(graph)
    dicts = as_dicts(ranks, names)
    for i in range(ranks.shape[0]):
        for j in range(ranks.shape[0]):
            if i == j:
                continue
            assert (dom.compare(ranks[i], ranks[j])
                    == semantic_compare(expr, dicts[i], dicts[j]))


@settings(max_examples=50, deadline=None)
@given(data=expression_and_ranks())
def test_pskyline_subset_of_skyline(data):
    expr, ranks = data
    names = expr.attributes()
    graph = PGraph.from_expression(expr, names=names)
    sky_graph = PGraph.from_expression(sky(names), names=names)
    p_result = set(naive(ranks, graph).tolist())
    sky_result = set(naive(ranks, sky_graph).tolist())
    assert p_result <= sky_result


@settings(max_examples=50, deadline=None)
@given(data=expression_and_ranks(max_rows=25))
def test_extension_order_extends_preference(data):
    expr, ranks = data
    names = expr.attributes()
    graph = PGraph.from_expression(expr, names=names)
    dom = Dominance(graph)
    extension = ExtensionOrder(graph)
    for i in range(ranks.shape[0]):
        for j in range(ranks.shape[0]):
            if dom.dominates(ranks[i], ranks[j]):
                assert extension.strictly_precedes(ranks[i], ranks[j])
                assert not extension.strictly_precedes(ranks[j], ranks[i])


@settings(max_examples=80, deadline=None)
@given(expr=p_expressions(max_attributes=7))
def test_expression_graphs_valid_and_decomposable(expr):
    names = expr.attributes()
    graph = PGraph.from_expression(expr, names=names)
    assert graph.satisfies_envelope()
    rebuilt = PGraph.from_expression(decompose(graph), names=names)
    assert rebuilt == graph


@settings(max_examples=80, deadline=None)
@given(expr=p_expressions(max_attributes=7))
def test_expression_text_round_trip(expr):
    assert parse(str(expr)) == expr


@settings(max_examples=40, deadline=None)
@given(data=expression_and_ranks(max_rows=60, max_value=4),
       algorithm=st.sampled_from(sorted(REGISTRY)))
def test_all_algorithms_compute_the_maxima(data, algorithm):
    expr, ranks = data
    names = expr.attributes()
    graph = PGraph.from_expression(expr, names=names)
    dom = Dominance(graph)
    result = set(REGISTRY[algorithm](ranks, graph).tolist())
    for i in range(ranks.shape[0]):
        is_maximal = not any(
            dom.dominates(ranks[j], ranks[i])
            for j in range(ranks.shape[0])
        )
        assert (i in result) == is_maximal


@settings(max_examples=40, deadline=None)
@given(data=expression_and_ranks(max_rows=50, max_value=2))
def test_indistinguishable_duplicates_stay_together(data):
    """Tuples with identical projections are either all in or all out."""
    expr, ranks = data
    names = expr.attributes()
    graph = PGraph.from_expression(expr, names=names)
    result = set(naive(ranks, graph).tolist())
    seen: dict[tuple, bool] = {}
    for i in range(ranks.shape[0]):
        key = tuple(ranks[i])
        inside = i in result
        if key in seen:
            assert seen[key] == inside
        seen[key] = inside
