"""Tests for the series-parallel counting sampler (exact uniformity)."""

import random
from collections import Counter

import pytest

from repro.core.pgraph import PGraph
from repro.sampling.enumeration import count_pgraphs
from repro.sampling.exact_counting import (ExactUniformSampler,
                                           count_pgraphs_exact)
from repro.sampling.random_pexpr import PExpressionSampler


class TestCounting:
    def test_matches_enumeration(self):
        # the recursion must equal exhaustive enumeration everywhere we
        # can afford to enumerate
        for d in range(1, 6):
            assert count_pgraphs_exact(d) == count_pgraphs(d)

    def test_known_prefix(self):
        assert [count_pgraphs_exact(d) for d in range(1, 7)] == \
            [1, 3, 19, 195, 2791, 51303]

    def test_large_d_is_cheap(self):
        assert count_pgraphs_exact(20) > 10 ** 20

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            count_pgraphs_exact(0)


class TestSampler:
    def test_samples_are_valid_pgraphs(self):
        rng = random.Random(1)
        for d in (1, 2, 6, 12):
            sampler = ExactUniformSampler([f"A{i}" for i in range(d)])
            for _ in range(10):
                graph = sampler.sample_graph(rng)
                assert graph.d == d
                assert graph.is_valid()

    def test_exact_uniformity_d3(self):
        rng = random.Random(2)
        sampler = ExactUniformSampler("ABC")
        total = 19 * 300
        counts = Counter(sampler.sample_graph(rng).closure
                         for _ in range(total))
        assert len(counts) == 19
        expected = total / 19
        for frequency in counts.values():
            assert abs(frequency - expected) < 0.2 * expected

    def test_chi_square_d4(self):
        """At d = 4 the chi-square statistic against uniform must sit in
        the bulk of the df = 194 distribution (no SampleSAT-style bias)."""
        rng = random.Random(3)
        sampler = ExactUniformSampler("ABCD")
        total = 195 * 60
        counts = Counter(sampler.sample_graph(rng).closure
                         for _ in range(total))
        expected = total / 195
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        chi2 += (195 - len(counts)) * expected
        assert chi2 < 300  # df=194; P(chi2 > 300) ~ 1e-6

    def test_expression_attribute_set(self):
        rng = random.Random(4)
        names = [f"A{i}" for i in range(9)]
        sampler = ExactUniformSampler(names)
        expr = sampler.sample_expression(rng)
        assert sorted(expr.attributes()) == names

    def test_graph_expression_consistency(self):
        rng = random.Random(5)
        sampler = ExactUniformSampler("ABCDE")
        expr = sampler.sample_expression(rng)
        graph = PGraph.from_expression(expr, names=tuple("ABCDE"))
        assert graph.is_valid()

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            ExactUniformSampler([])


class TestIntegration:
    def test_counting_method_in_pexpression_sampler(self):
        rng = random.Random(6)
        sampler = PExpressionSampler([f"A{i}" for i in range(10)],
                                     method="counting")
        assert sampler.method == "counting"
        graph = sampler.sample_graph(rng)
        assert graph.is_valid()
        expr = sampler.sample_expression(rng)
        assert len(expr.attributes()) == 10

    def test_counting_agrees_with_enumeration_distribution(self):
        """Counting sampler and exact-enumeration sampler must induce the
        same distribution (both exactly uniform)."""
        rng = random.Random(7)
        counting = PExpressionSampler("ABC", method="counting")
        enumerated = PExpressionSampler("ABC", method="exact")
        total = 19 * 120
        a = Counter(counting.sample_graph(rng).closure
                    for _ in range(total))
        b = Counter(enumerated.sample_graph(rng).closure
                    for _ in range(total))
        assert set(a) == set(b)
        for key in a:
            assert abs(a[key] - b[key]) < 0.5 * (total / 19)
