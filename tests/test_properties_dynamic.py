"""Hypothesis property tests for the dynamic/stateful components:
the incremental maintainer and the relation round-trips."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import naive
from repro.algorithms.incremental import PSkylineMaintainer
from repro.core.attributes import highest, lowest
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.core.relation import Relation

_GRAPHS = [
    "A * B",
    "A & B",
    "(A & B) * C",
    "A & (B * C)",
]


@st.composite
def operation_sequences(draw):
    text = draw(st.sampled_from(_GRAPHS))
    graph = PGraph.from_expression(parse(text))
    length = draw(st.integers(min_value=1, max_value=40))
    operations = []
    live = 0
    for _ in range(length):
        if live > 0 and draw(st.booleans()):
            operations.append(("delete", draw(
                st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            values = draw(st.lists(
                st.integers(min_value=0, max_value=3),
                min_size=graph.d, max_size=graph.d))
            operations.append(("insert", values))
            live += 1
    return graph, operations


@settings(max_examples=60, deadline=None)
@given(data=operation_sequences())
def test_maintainer_always_equals_recomputation(data):
    graph, operations = data
    maintainer = PSkylineMaintainer(graph, capacity=2)
    alive: list[int] = []
    rows: dict[int, list[int]] = {}
    for operation, payload in operations:
        if operation == "insert":
            tuple_id = maintainer.insert(np.array(payload, dtype=float))
            alive.append(tuple_id)
            rows[tuple_id] = payload
        else:
            victim = alive.pop(payload % len(alive))
            maintainer.delete(victim)
            del rows[victim]
        # invariant: maintained set == recomputed M_pi of alive tuples
        expected: set[int] = set()
        if alive:
            ordered = sorted(alive)
            block = np.array([rows[i] for i in ordered], dtype=float)
            expected = {ordered[i]
                        for i in naive(block, graph).tolist()}
        assert set(maintainer.skyline_ids().tolist()) == expected


@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
        min_size=0, max_size=30,
    )
)
def test_relation_record_round_trip(rows):
    schema = [lowest("a"), highest("b")]
    relation = Relation.from_records(
        [{"a": a, "b": b} for a, b in rows], schema)
    rebuilt = Relation.from_records(relation.to_records(), schema)
    assert np.array_equal(rebuilt.ranks, relation.ranks)


@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        min_size=1, max_size=25,
    )
)
def test_insertion_order_does_not_matter(rows):
    graph = PGraph.from_expression(parse("A & B"))
    forward = PSkylineMaintainer(graph)
    backward = PSkylineMaintainer(graph)
    for row in rows:
        forward.insert(np.array(row, dtype=float))
    for row in reversed(rows):
        backward.insert(np.array(row, dtype=float))
    forward_values = {tuple(r) for r in forward.skyline_ranks()}
    backward_values = {tuple(r) for r in backward.skyline_ranks()}
    assert forward_values == backward_values
