"""Tests for the external-memory output-sensitive OSDC (paper §8)."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import Stats, naive
from repro.algorithms.external_osdc import external_osdc
from repro.core.parser import parse
from repro.core.pgraph import PGraph


@pytest.mark.parametrize("seed", range(8))
def test_matches_oracle(seed, rng, nrng):
    rng.seed(seed)
    nrng = np.random.default_rng(seed)
    d = rng.randint(1, 6)
    names = [f"A{i}" for i in range(d)]
    graph = PGraph.from_expression(random_expression(names, rng),
                                   names=names)
    n = rng.randint(1, 700)
    ranks = nrng.integers(0, rng.choice([2, 5, 50]),
                          size=(n, d)).astype(float)
    expected = set(naive(ranks, graph).tolist())
    got = set(external_osdc(ranks, graph, page_size=32,
                            memory_budget=40).tolist())
    assert got == expected


def test_duplicate_heavy_input(nrng):
    graph = PGraph.from_expression(parse("A & (B * C)"))
    ranks = nrng.integers(0, 2, size=(500, 3)).astype(float)
    expected = set(naive(ranks, graph).tolist())
    got = set(external_osdc(ranks, graph, page_size=16,
                            memory_budget=20).tolist())
    assert got == expected


def test_all_equal_input():
    graph = PGraph.from_expression(parse("A * B"))
    ranks = np.ones((300, 2))
    got = external_osdc(ranks, graph, page_size=16, memory_budget=10)
    assert got.tolist() == list(range(300))


def test_io_counters_and_lookahead(nrng):
    names = [f"A{i}" for i in range(4)]
    graph = PGraph.from_expression(parse(" & ".join(names)), names=names)
    ranks = nrng.random((20_000, 4))
    stats = Stats()
    result = external_osdc(ranks, graph, stats=stats, page_size=256,
                           memory_budget=1024)
    assert result.size <= 4
    assert stats.io_reads > 0 and stats.io_writes > 0
    # the look-ahead must keep the I/O volume near-linear: with v ~ 1 the
    # recursion terminates immediately after the first look-ahead prune
    pages = 20_000 // 256
    assert stats.io_reads < 12 * pages
    assert stats.pruned_by_lookahead > 18_000


def test_output_sensitive_io(nrng):
    """More output => more I/O; tiny output => few passes."""
    names = [f"A{i}" for i in range(4)]
    lex = PGraph.from_expression(parse(" & ".join(names)), names=names)
    sky = PGraph.from_expression(parse(" * ".join(names)), names=names)
    ranks = nrng.random((30_000, 4))
    lex_stats, sky_stats = Stats(), Stats()
    external_osdc(ranks, lex, stats=lex_stats, memory_budget=1024)
    external_osdc(ranks, sky, stats=sky_stats, memory_budget=1024)
    assert lex_stats.io_reads < sky_stats.io_reads


def test_memory_budget_validated(nrng):
    graph = PGraph.from_expression(parse("A"))
    with pytest.raises(ValueError):
        external_osdc(nrng.random((10, 1)), graph, memory_budget=1)


def test_registered():
    from repro.algorithms import REGISTRY
    assert "external-osdc" in REGISTRY
