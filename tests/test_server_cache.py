"""The result cache: staleness-impossibility, LRU bounds, write storms.

The load-bearing property is **snapshot consistency**: a cache hit may
serve an answer computed at an older write version only if the relation
has not changed since -- equivalently, every response's ``version``
field must pin exactly the answer a fresh ``p_skyline`` would give at
that version.  The concurrency test engineers a relation where the
skyline at every version is a *single known row* (each insert strictly
dominates everything before it), so any stale answer is immediately
visible no matter how reads and writes interleave.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.attributes import lowest
from repro.core.sharding import ShardedRelation
from repro.server import SkylineClient, SkylineServer, serve_in_thread
from repro.server.cache import CachedResult, ResultCache


# -- ResultCache unit properties ---------------------------------------------

def _entry(source: int = 1, version: int = 0) -> CachedResult:
    return CachedResult(payload={"rows": []}, source_id=source,
                        version=version)


def test_lru_eviction_bound():
    cache = ResultCache(maxsize=8)
    for key in range(30):
        cache.put(key, _entry())
    assert len(cache) == 8
    assert cache.evictions == 22
    # the survivors are the most recently inserted keys
    assert all(cache.get(key, 0) is not None for key in range(22, 30))
    assert cache.get(0, 0) is None


def test_lru_recency_refresh():
    cache = ResultCache(maxsize=2)
    cache.put("a", _entry())
    cache.put("b", _entry())
    assert cache.get("a", 0) is not None  # refresh "a"
    cache.put("c", _entry())              # evicts "b", not "a"
    assert cache.get("a", 0) is not None
    assert cache.get("b", 0) is None


def test_version_mismatch_is_a_miss_and_drops_the_entry():
    cache = ResultCache(maxsize=4)
    cache.put("k", _entry(version=3))
    assert cache.get("k", 3) is not None
    assert cache.get("k", 4) is None      # stale: dropped
    assert cache.invalidations == 1
    assert cache.get("k", 3) is None      # really gone
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 2


def test_invalidate_source_scoped():
    cache = ResultCache(maxsize=16)
    for key in range(4):
        cache.put(("a", key), _entry(source=1))
        cache.put(("b", key), _entry(source=2))
    assert cache.invalidate_source(1) == 4
    assert len(cache) == 4
    assert all(cache.get(("b", key), 0) is not None for key in range(4))


def test_rejects_bad_maxsize():
    with pytest.raises(ValueError):
        ResultCache(maxsize=0)


# -- served staleness property under concurrent writes -----------------------

MARKER_COLUMNS = ["x", "y", "z"]


def _marker_relation() -> ShardedRelation:
    relation = ShardedRelation([lowest(name) for name in MARKER_COLUMNS],
                               shards=3)
    # base rows strictly dominated by every marker to come
    rng = np.random.default_rng(5)
    for row in rng.uniform(1.0, 2.0, size=(40, 3)):
        relation.insert_ranks(row)
    return relation


def test_hits_never_serve_stale_answers_across_writes():
    """Write storm vs concurrent readers: every response's pinned
    version must contain exactly the row that is the skyline at that
    version."""
    relation = _marker_relation()
    server = SkylineServer(port=0, max_inflight=3)
    server.register("m", relation)
    statement = "SELECT * FROM m PREFERRING x & y & z"

    # marker value per version: after the i-th marker insert the whole
    # skyline is exactly that marker row
    expected: dict[int, float] = {}
    expected_lock = threading.Lock()
    base_version = relation.version

    stop = threading.Event()
    failures: list[str] = []

    import time as time_module

    started = threading.Barrier(4)

    def writer() -> None:
        started.wait(timeout=30)
        for step in range(60):
            value = -float(step + 1)
            relation.insert_ranks(np.array([value, value, value]))
            with expected_lock:
                expected[relation.version] = value
            time_module.sleep(0.002)  # let readers race the storm
        stop.set()

    def reader() -> None:
        import time as time_module

        with SkylineClient(handle.address) as client:
            started.wait(timeout=30)
            while True:
                response = client.query(statement)
                version = response["version"]
                if version > base_version:
                    value = None
                    for _ in range(100):
                        # the writer records the version right after the
                        # insert returns; wait out that tiny window
                        with expected_lock:
                            value = expected.get(version)
                        if value is not None:
                            break
                        time_module.sleep(0.005)
                    if value is None:
                        failures.append(f"unknown version {version}")
                        break
                    rows = response["rows"]
                    if rows != [[value, value, value]]:
                        failures.append(
                            f"version {version}: got {rows}, expected "
                            f"[[{value}] * 3] (cached="
                            f"{response['cached']})")
                        break
                if stop.is_set():
                    break

    with serve_in_thread(server) as handle:
        threads = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in threads:
            thread.join(timeout=60)
    assert not failures, failures[:3]
    # the storm actually exercised the invalidation hook
    assert server.cache.stats()["invalidations"] > 0


def test_write_storm_invalidation_counters():
    relation = _marker_relation()
    server = SkylineServer(port=0)
    server.register("m", relation)
    statement = "SELECT * FROM m PREFERRING x & y & z"
    with serve_in_thread(server) as handle:
        with SkylineClient(handle.address) as client:
            for step in range(10):
                first = client.query(statement)
                second = client.query(statement)
                # no write in between: the second answer is a hit
                assert second["cached"] is True
                assert second["rows"] == first["rows"]
                relation.insert_ranks(
                    np.array([-(step + 1.0)] * 3))
                after = client.query(statement)
                # the write invalidated the entry: fresh answer
                assert after["cached"] is False
                assert after["rows"] == [[-(step + 1.0)] * 3]
    stats = server.cache.stats()
    assert stats["invalidations"] >= 10
    assert stats["hits"] >= 10


def test_cached_equals_fresh_at_pinned_version():
    """Snapshot-isolation differential: a hit's payload equals a fresh
    evaluation when no write intervened."""
    relation = _marker_relation()
    server = SkylineServer(port=0)
    server.register("m", relation)
    statement = "SELECT * FROM m PREFERRING x * y * z"
    with serve_in_thread(server) as handle:
        with SkylineClient(handle.address) as client:
            cached = client.query(statement)
            cached = client.query(statement)
            assert cached["cached"] is True
            fresh = client.query(statement, no_cache=True)
            assert cached["rows"] == fresh["rows"]
            assert cached["version"] == fresh["version"]


def test_no_cache_bypasses_but_does_not_pollute():
    relation = _marker_relation()
    server = SkylineServer(port=0)
    server.register("m", relation)
    statement = "SELECT * FROM m PREFERRING x & y"
    with serve_in_thread(server) as handle:
        with SkylineClient(handle.address) as client:
            client.query(statement, no_cache=True)
            first = client.query(statement)
            assert first["cached"] is False  # bypass did not populate
            second = client.query(statement)
            assert second["cached"] is True


def test_cache_disabled_server():
    relation = _marker_relation()
    server = SkylineServer(port=0, cache=None)
    server.register("m", relation)
    with serve_in_thread(server) as handle:
        with SkylineClient(handle.address) as client:
            statement = "SELECT * FROM m PREFERRING x & y & z"
            first = client.query(statement)
            second = client.query(statement)
            assert first["cached"] is False
            assert second["cached"] is False
            assert second["rows"] == first["rows"]
            assert client.stats()["cache"] is None
