"""Tests for the reference implementations, and the three-way cross-check
reference == oracle == optimised kernels."""

import numpy as np
import pytest

from conftest import random_expression
from repro import reference
from repro.algorithms import REGISTRY, naive
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.reference.pgraph import PriorityGraph


def as_dicts(ranks, names):
    return [dict(zip(names, (float(v) for v in row))) for row in ranks]


class TestReferenceModel:
    def test_example1_comparisons(self):
        expr = parse("(P & T) * M")
        car1 = {"P": 11500, "M": 50000, "T": 1}
        car3 = {"P": 12000, "M": 50000, "T": 0}
        assert reference.dominates(expr, car1, car3)
        assert not reference.dominates(expr, car3, car1)

    def test_outcome_flip(self):
        assert reference.Outcome.FIRST.flipped() is reference.Outcome.SECOND
        assert reference.Outcome.EQUAL.flipped() is reference.Outcome.EQUAL

    def test_compare_antisymmetry(self, rng, nrng):
        for _ in range(20):
            names = [f"A{i}" for i in range(rng.randint(1, 5))]
            expr = random_expression(names, rng)
            u = dict(zip(names, nrng.integers(0, 3, len(names)).tolist()))
            v = dict(zip(names, nrng.integers(0, 3, len(names)).tolist()))
            forward = reference.compare(expr, u, v)
            backward = reference.compare(expr, v, u)
            assert backward is forward.flipped()

    def test_maxima_small(self):
        expr = parse("A & B")
        tuples = [{"A": 0, "B": 1}, {"A": 0, "B": 0}, {"A": 1, "B": 0}]
        assert reference.maxima(expr, tuples) == [1]


class TestReferencePriorityGraph:
    def test_matches_bitmask_pgraph(self, rng):
        for _ in range(30):
            names = [f"A{i}" for i in range(rng.randint(1, 7))]
            expr = random_expression(names, rng)
            ref_graph = PriorityGraph(expr)
            fast = PGraph.from_expression(expr, names=names)
            for index, name in enumerate(names):
                desc = {names[j] for j in range(len(names))
                        if fast.closure[index] & (1 << j)}
                anc = {names[j] for j in range(len(names))
                       if fast.ancestors_mask[index] & (1 << j)}
                succ = {names[j] for j in range(len(names))
                        if fast.reduction[index] & (1 << j)}
                assert ref_graph.desc[name] == desc
                assert ref_graph.anc[name] == anc
                assert ref_graph.succ[name] == succ
                assert ref_graph.depth[name] == fast.depths[index]
            assert ref_graph.roots == {
                names[j] for j in range(len(names))
                if fast.roots & (1 << j)
            }


@pytest.mark.parametrize("algorithm", ["bnl", "sfs", "dc", "osdc"])
def test_reference_algorithms_match_model(algorithm, rng, nrng):
    function = getattr(reference, algorithm)
    for trial in range(25):
        d = rng.randint(1, 5)
        names = [f"A{i}" for i in range(d)]
        expr = random_expression(names, rng)
        n = rng.randint(0, 60)
        tuples = as_dicts(nrng.integers(0, 3, size=(n, d)), names)
        expected = [tuples[i] for i in reference.maxima(expr, tuples)]
        got = function(expr, tuples)
        key = lambda t: tuple(sorted(t.items()))  # noqa: E731
        assert sorted(map(key, got)) == sorted(map(key, expected)), trial


def test_three_way_cross_check(rng, nrng):
    """reference OSDC == naive NumPy oracle == optimised OSDC."""
    for trial in range(15):
        d = rng.randint(1, 5)
        names = [f"A{i}" for i in range(d)]
        expr = random_expression(names, rng)
        graph = PGraph.from_expression(expr, names=names)
        ranks = nrng.integers(0, 4, size=(rng.randint(1, 80), d)
                              ).astype(float)
        tuples = as_dicts(ranks, names)
        fast = set(REGISTRY["osdc"](ranks, graph).tolist())
        oracle = set(naive(ranks, graph).tolist())
        ref_rows = reference.osdc(expr, tuples)
        key = lambda t: tuple(t[n] for n in names)  # noqa: E731
        ref_keys = sorted(map(key, ref_rows))
        oracle_keys = sorted(key(tuples[i]) for i in oracle)
        assert fast == oracle
        assert ref_keys == oracle_keys


def test_reference_pscreen(rng, nrng):
    for trial in range(20):
        d = rng.randint(1, 5)
        names = [f"A{i}" for i in range(d)]
        expr = random_expression(names, rng)
        graph = PriorityGraph(expr)
        root = sorted(graph.roots)[0]
        rows = as_dicts(nrng.integers(0, 4, size=(rng.randint(2, 80), d)),
                        names)
        values = sorted({item[root] for item in rows})
        if len(values) < 2:
            continue
        threshold = values[len(values) // 2] if \
            values[len(values) // 2] > values[0] else values[1]
        blockers = [item for item in rows if item[root] < threshold]
        tuples = [item for item in rows if item[root] >= threshold]
        got = reference.pscreen(expr, blockers, tuples)
        expected = [item for item in tuples
                    if not any(reference.dominates(expr, b, item)
                               for b in blockers)]
        key = lambda t: tuple(sorted(t.items()))  # noqa: E731
        assert sorted(map(key, got)) == sorted(map(key, expected))


def test_extension_key_levels():
    expr = parse("A & (B * C)")
    graph = PriorityGraph(expr)
    key = reference.extension_key(graph, {"A": 1.0, "B": 2.0, "C": 3.0})
    assert key == (1.0, 5.0)
