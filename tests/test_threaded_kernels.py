"""Thread-equivalence property suite for the intra-worker screen layer.

The screening thread budget must never change an answer: for every
kernel family, chunk size, dimensionality and budget the tiled (or
``prange``) screen returns bit-identical survivors and exact counters,
honours deadlines/cancellation between tiles, and composes with the
process pool without oversubscribing (workers pin a budget of 1).  The
suite also covers the budget-resolution order (override > pin > env >
auto), the workspace-lease arena (nested kernel entries get distinct
scratch buffers) and the BENCH_10 perf-gate plumbing.
"""

import random
import time

import numpy as np
import pytest

import repro.core.dominance as dominance_module
from repro.core import native
from repro.core.dominance import (DENSE_TABLE_LIMIT, KERNELS, Dominance,
                                  _lease_workspace,
                                  _resolve_screen_threads, _tile_bounds,
                                  _TILE_STATE, screen_block_multi)
from repro.engine.context import CancellationToken, ExecutionContext
from repro.engine.errors import QueryCancelled, QueryTimeout
from repro.engine.threads import (DEFAULT_THREAD_CAP, ENV_VAR,
                                  WIDE_THREAD_CAP, auto_budget,
                                  budget_source, cap_for,
                                  effective_budget, pin_thread_budget,
                                  thread_budget)
from repro.sampling.random_pexpr import PExpressionSampler


def sample_graph(d: int, seed: int = 0):
    rng = random.Random(f"threads:{d}:{seed}")
    sampler = PExpressionSampler([f"A{i}" for i in range(d)],
                                 method="counting")
    return sampler.sample_graph(rng)


@pytest.fixture(autouse=True)
def _clean_policy(monkeypatch):
    """Every test starts from the pure auto policy."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    pin_thread_budget(None)
    yield
    pin_thread_budget(None)


# -- budget resolution -------------------------------------------------------

class TestBudgetResolution:
    def test_auto_is_cores_capped(self):
        budget, source = budget_source(4)
        assert source == "auto"
        assert budget == auto_budget(4)
        assert 1 <= budget <= DEFAULT_THREAD_CAP

    def test_env_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "7")
        assert budget_source() == (7, "env")

    def test_pin_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "7")
        pin_thread_budget(3)
        assert budget_source() == (3, "pinned")

    def test_override_wins_over_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "7")
        pin_thread_budget(3)
        with thread_budget(5):
            assert budget_source() == (5, "override")
            assert effective_budget() == 5

    def test_override_nests_and_restores(self):
        with thread_budget(2):
            with thread_budget(6):
                assert effective_budget() == 6
            assert effective_budget() == 2
        assert budget_source()[1] == "auto"

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            with thread_budget(0):
                pass  # pragma: no cover
        with pytest.raises(ValueError):
            pin_thread_budget(-1)

    def test_unparseable_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "banana")
        assert budget_source()[1] == "auto"
        monkeypatch.setenv(ENV_VAR, "0")
        assert budget_source()[1] == "auto"

    def test_d_aware_cap(self):
        assert cap_for(DENSE_TABLE_LIMIT) == DEFAULT_THREAD_CAP
        assert cap_for(DENSE_TABLE_LIMIT + 1) == WIDE_THREAD_CAP
        assert cap_for(None) == DEFAULT_THREAD_CAP

    def test_explicit_argument_is_forced(self):
        assert _resolve_screen_threads(3, 4) == (3, True)
        with thread_budget(2):
            # the argument wins over the scope, both are "forced"
            assert _resolve_screen_threads(5, 4) == (5, True)
            assert _resolve_screen_threads(None, 4) == (2, True)

    def test_nested_tile_never_retiles(self):
        _TILE_STATE.active = True
        try:
            assert _resolve_screen_threads(None, 4) == (1, False)
            assert _resolve_screen_threads(8, 4) == (1, False)
            with thread_budget(8):
                assert _resolve_screen_threads(None, 4) == (1, False)
        finally:
            _TILE_STATE.active = False

    def test_tile_bounds_cover_exactly(self):
        for n in (0, 1, 7, 100, 101):
            for tiles in (1, 2, 3, 8, 200):
                spans = _tile_bounds(n, tiles)
                assert len(spans) <= max(1, min(tiles, n))
                flat = [i for lo, hi in spans for i in range(lo, hi)]
                assert flat == list(range(n))


# -- thread equivalence ------------------------------------------------------

def _case(d: int, n: int, m: int, seed: int = 0):
    graph = sample_graph(d, seed)
    rng = np.random.default_rng(seed * 31 + d)
    block = rng.integers(0, 4, size=(n, d)).astype(float)
    against = np.vstack([block[: m // 2],
                         rng.normal(size=(m - m // 2, d)).round(1)])
    return Dominance(graph).prepare(), block, against


@pytest.mark.parametrize("d", [5, 18])
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("chunk", [16, 64])
@pytest.mark.parametrize("budget", [2, 5])
def test_screen_block_thread_equivalence(d, kernel, chunk, budget):
    dominance, block, against = _case(d, 200, 240)
    serial = dominance.screen_block(block, against, chunk=chunk,
                                    kernel=kernel, threads=1)
    threaded = dominance.screen_block(block, against, chunk=chunk,
                                      kernel=kernel, threads=budget)
    assert np.array_equal(serial, threaded)


def test_screen_block_budget_scope_equivalence():
    dominance, block, against = _case(6, 300, 300)
    serial = dominance.screen_block(block, against)
    with thread_budget(4):
        scoped = dominance.screen_block(block, against)
    assert np.array_equal(serial, scoped)


def test_screen_block_oversized_budget_clamps_to_rows():
    dominance, block, against = _case(4, 9, 50)
    serial = dominance.screen_block(block, against, threads=1)
    huge = dominance.screen_block(block, against, threads=64)
    assert np.array_equal(serial, huge)


def test_screen_block_multi_equivalence_and_exact_counters():
    graphs = [sample_graph(6, seed) for seed in range(3)]
    dominances = [Dominance(g).prepare() for g in graphs]
    rng = np.random.default_rng(7)
    rows = rng.integers(0, 3, size=(150, 6)).astype(float)
    serial_counters, threaded_counters = {}, {}
    serial = screen_block_multi(dominances, rows, chunk=32,
                                counters=serial_counters, threads=1)
    threaded = screen_block_multi(dominances, rows, chunk=32,
                                  counters=threaded_counters, threads=4)
    for left, right in zip(serial, threaded):
        assert np.array_equal(left, right)
    # identical chunk structure at every budget => exact counters
    for key in ("mask_hits", "mask_misses", "kernel"):
        assert serial_counters[key] == threaded_counters[key]
    assert serial_counters["threads"] == 1
    if not native.parallel_available():
        assert threaded_counters["threads"] == 1


def test_deadline_honoured_between_tiles():
    dominance, block, against = _case(5, 400, 400)
    context = ExecutionContext(deadline=time.monotonic() - 1.0)
    with pytest.raises(QueryTimeout):
        dominance.screen_block(block, against, chunk=16,
                               check=context.check, threads=4)


def test_cancel_honoured_mid_screen_between_tiles():
    dominance, block, against = _case(5, 400, 400)
    token = CancellationToken()
    context = ExecutionContext(cancel=token)
    calls = [0]

    def check(phase):
        calls[0] += 1
        if calls[0] > 3:
            token.cancel()
        context.check(phase)

    with pytest.raises(QueryCancelled):
        dominance.screen_block(block, against, chunk=16, check=check,
                               threads=4)
    assert calls[0] > 3


# -- workspace arena ---------------------------------------------------------

def test_nested_leases_are_distinct_arenas():
    with _lease_workspace() as outer:
        with _lease_workspace() as inner:
            assert inner is not outer
            a = outer.get("buv", (4, 4), np.uint32)
            b = inner.get("buv", (4, 4), np.uint32)
            assert not np.shares_memory(a, b)
    # steady state re-leases a warm arena instead of allocating
    with _lease_workspace() as warm:
        assert warm in (outer, inner)


def test_reentrant_screen_inside_check_callback(monkeypatch):
    """Regression: a screen nested inside a ``check`` callback used to
    share the single per-thread workspace with the outer screen,
    clobbering its live ``buv``/``bvu``/``dom`` buffers.  Leasing gives
    the nested entry a distinct arena, so the outer answer is unchanged.
    """
    monkeypatch.setattr(dominance_module, "AGAINST_CHUNK", 16)
    dominance, block, against = _case(6, 120, 200)
    other, other_block, other_against = _case(6, 40, 60, seed=3)
    expected = dominance.screen_block(block, against, chunk=8)

    def nosy_check(phase):
        other.screen_block(other_block, other_against, chunk=8)

    got = dominance.screen_block(block, against, chunk=8,
                                 check=nosy_check)
    assert np.array_equal(expected, got)


def test_reentrant_screen_inside_tile(monkeypatch):
    """The same re-entrancy while tiled: the nested screen must neither
    deadlock on the tile executor nor corrupt the tile's buffers."""
    monkeypatch.setattr(dominance_module, "AGAINST_CHUNK", 32)
    dominance, block, against = _case(5, 200, 120)
    expected = dominance.screen_block(block, against, chunk=16,
                                      threads=1)

    def nosy_check(phase):
        inner, inner_block, inner_against = _case(5, 30, 30, seed=9)
        inner.screen_block(inner_block, inner_against, threads=4)

    got = dominance.screen_block(block, against, chunk=16,
                                 check=nosy_check, threads=3)
    assert np.array_equal(expected, got)


# -- native parallel layer ---------------------------------------------------

def test_parallel_sources_alias_serial_without_numba():
    available, reason = native.parallel_availability()
    if available:
        pytest.skip("compiled parallel layer is up on this host")
    assert reason
    assert native.set_thread_count(4) == 1
    # the graceful degradation: the parallel names stay bound to the
    # pure-python sources (``prange`` is plain ``range`` there), so
    # dispatch never branches and the answers match the serial kernels
    dominance, block, against = _case(4, 30, 40)
    block = np.ascontiguousarray(block, dtype=np.float64)
    against = np.ascontiguousarray(against, dtype=np.float64)
    closures, table, use_table = dominance._native_tables()
    serial = np.zeros(block.shape[0], dtype=bool)
    parallel = np.zeros(block.shape[0], dtype=bool)
    native.screen_chunk(block, against, closures, table, use_table,
                        serial)
    native.screen_chunk_parallel(block, against, closures, table,
                                 use_table, parallel)
    assert np.array_equal(serial, parallel)
    shape = (block.shape[0], against.shape[0])
    buv_s, bvu_s = (np.zeros(shape, dtype=np.uint64) for _ in range(2))
    buv_p, bvu_p = (np.zeros(shape, dtype=np.uint64) for _ in range(2))
    native.pack_masks(block, against, buv_s, bvu_s)
    native.pack_masks_parallel(block, against, buv_p, bvu_p)
    assert np.array_equal(buv_s, buv_p) and np.array_equal(bvu_s, bvu_p)
    dom_s = np.zeros(block.shape[0], dtype=bool)
    dom_p = np.zeros(block.shape[0], dtype=bool)
    native.eval_any(buv_s, bvu_s, closures, table, use_table, dom_s)
    native.eval_any_parallel(buv_p, bvu_p, closures, table, use_table,
                             dom_p)
    assert np.array_equal(dom_s, dom_p)


def test_set_thread_count_reports_applied_budget():
    applied = native.set_thread_count(2)
    assert applied >= 1
    if not native.parallel_available():
        assert applied == 1


# -- pool x threads topology -------------------------------------------------

def test_pool_workers_pin_thread_budget():
    from repro.algorithms.base import Stats
    from repro.algorithms.parallel import parallel_osdc
    from repro.engine.pool import WORKER_THREAD_BUDGET, pool_available

    assert WORKER_THREAD_BUDGET == 1
    if not pool_available():
        pytest.skip("worker pool unavailable in this environment")
    graph = sample_graph(4)
    rng = np.random.default_rng(11)
    ranks = rng.normal(size=(120, 4)).round(2)
    stats = Stats()
    context = ExecutionContext.create(stats=stats)
    result = parallel_osdc(ranks, graph, context=context, processes=2,
                           min_chunk=16)
    serial = Dominance(graph).prepare().screen_block(ranks, ranks)
    assert set(np.asarray(result).tolist()) == \
        set(np.flatnonzero(serial).tolist())
    assert stats.extra["pool"]["thread_budget"] == WORKER_THREAD_BUDGET


def test_plan_records_thread_budget():
    from repro.planner import Plan

    from repro.algorithms.base import Stats

    stats = Stats()
    context = ExecutionContext.create(stats=stats)
    Plan("osdc", "because", thread_budget=1).record(context)
    assert stats.extra["plan"]["thread_budget"] == 1
    stats = Stats()
    context = ExecutionContext.create(stats=stats)
    with thread_budget(6):
        Plan("osdc", "because").record(context)
    assert stats.extra["plan"]["thread_budget"] == 6


def test_context_threads_scopes_the_query():
    from repro.algorithms.base import Stats
    from repro.core.query import p_skyline

    expression = "A0 & A1 & A2 & A3 & A4"
    rng = np.random.default_rng(3)
    ranks = rng.normal(size=(80, 5)).round(2)
    stats = Stats()
    context = ExecutionContext.create(stats=stats, threads=3)
    baseline = p_skyline(ranks, expression, algorithm="osdc")
    scoped = p_skyline(ranks, expression, algorithm="osdc",
                       context=context)
    assert np.array_equal(np.asarray(baseline), np.asarray(scoped))
    assert stats.extra["thread_budget"] == 3


# -- verification axis -------------------------------------------------------

def test_kernel_threads_metamorphic_axis():
    from repro.algorithms.base import get_algorithm
    from repro.verify.metamorphic import TRANSFORMS, run_transform

    transform = TRANSFORMS["kernel-threads"]
    assert transform.threads == 2
    graph = sample_graph(6)
    rng = np.random.default_rng(5)
    ranks = rng.integers(0, 2, size=(24, 6)).astype(float)
    mismatches = run_transform(transform, ranks, graph,
                               get_algorithm("osdc"),
                               random.Random(0), algorithm="osdc")
    assert mismatches == []


def test_kernel_threads_axis_catches_a_budget_sensitive_bug():
    """Mutation smoke-check: an algorithm that returns garbage only
    under a multi-thread budget is caught by the axis."""
    from repro.verify.metamorphic import TRANSFORMS, run_transform

    graph = sample_graph(4)
    rng = np.random.default_rng(6)
    ranks = rng.integers(0, 2, size=(16, 4)).astype(float)

    def buggy(r, g, **_):
        if effective_budget() > 1:
            return np.arange(r.shape[0])  # "everything survives"
        serial = Dominance(g).prepare().screen_block(r, r, threads=1)
        return np.flatnonzero(serial)

    mismatches = run_transform(TRANSFORMS["kernel-threads"], ranks,
                               graph, buggy, random.Random(0),
                               algorithm="buggy")
    assert mismatches != []


# -- BENCH_10 perf gate ------------------------------------------------------

def test_threaded_gate_quick_self_check():
    from repro.bench.perf_gate import (THREADS_SCHEMA, compare_threaded,
                                       run_threaded_gate)

    artifact = run_threaded_gate(quick=True)
    assert artifact["schema"] == THREADS_SCHEMA
    assert {"cpu_count", "thread_budget"} <= set(artifact["host"])
    for record in artifact["screens"]:
        assert record["parity"] is True
    # the quick run gates against itself (speedup floor relaxed: this
    # host may be single-core or on the tiled fallback)
    assert compare_threaded(artifact, artifact,
                            min_threaded_speedup=0.0) == []
    if not (artifact["native_available"]
            and artifact["parallel_native"]):
        assert any("parity" in waiver
                   for waiver in artifact.get("waivers", []))


def _fake_artifact():
    return {
        "schema": "repro-perf-gate-threads/1",
        "workload": {"budget": 4},
        "cores": 8,
        "host": {"cpu_count": 8, "thread_budget": 4},
        "native_available": True,
        "parallel_native": True,
        "screens": [{
            "name": "threaded-screen-d8",
            "kernel": "native",
            "budget": 4,
            "parity": True,
            "survivors": 100,
            "timings": {"serial": 1.0, "threaded": 0.5},
            "speedup_threaded_over_serial": 2.0,
        }],
        "pool": {"available": True, "worker_thread_budget": 1,
                 "expected_budget": 1},
    }


def test_compare_threaded_flags_parity_violation():
    from repro.bench.perf_gate import compare_threaded

    artifact = _fake_artifact()
    artifact["screens"][0]["parity"] = False
    violations = compare_threaded(artifact, None)
    assert any("bit-exact" in v for v in violations)


def test_compare_threaded_flags_slow_speedup_on_compiled_hosts():
    from repro.bench.perf_gate import compare_threaded

    artifact = _fake_artifact()
    artifact["screens"][0]["speedup_threaded_over_serial"] = 1.1
    violations = compare_threaded(artifact, None)
    assert any("below the" in v for v in violations)
    # the speedup gate is waived off compiled-parallel hosts...
    waived = _fake_artifact()
    waived["parallel_native"] = False
    waived["screens"][0]["speedup_threaded_over_serial"] = 1.1
    assert compare_threaded(waived, None) == []
    # ...and on small hosts
    small = _fake_artifact()
    small["cores"] = 2
    small["screens"][0]["speedup_threaded_over_serial"] = 1.1
    assert compare_threaded(small, None) == []


def test_compare_threaded_flags_pool_budget_mismatch():
    from repro.bench.perf_gate import compare_threaded

    artifact = _fake_artifact()
    artifact["pool"]["worker_thread_budget"] = 4
    violations = compare_threaded(artifact, None)
    assert any("pool x threads" in v for v in violations)


def test_compare_threaded_host_shape_gates_timing_drift():
    from repro.bench.perf_gate import compare_threaded

    baseline = _fake_artifact()
    slower = _fake_artifact()
    slower["screens"][0]["timings"] = {"serial": 10.0, "threaded": 5.0}
    slower["screens"][0]["speedup_threaded_over_serial"] = 2.0
    # same host shape: the 10x regression trips the drift gate
    assert any("more than" in v
               for v in compare_threaded(slower, baseline))
    # different host shape (e.g. CI runner with another core count):
    # timings are skipped, survivors still gate
    moved = _fake_artifact()
    moved["host"] = {"cpu_count": 2, "thread_budget": 2}
    moved["screens"][0]["timings"] = {"serial": 10.0, "threaded": 5.0}
    assert compare_threaded(moved, baseline) == []
    diverged = _fake_artifact()
    diverged["host"] = {"cpu_count": 2, "thread_budget": 2}
    diverged["screens"][0]["survivors"] = 7
    assert any("baseline" in v
               for v in compare_threaded(diverged, baseline))


def test_threaded_bench_record_shape():
    from repro.bench.perf_gate import run_threaded_bench

    record = run_threaded_bench(6, 1_500, budget=2)
    assert record["parity"] is True
    assert record["budget"] == 2
    assert record["layer"] in ("prange-native", "tiled")
    assert set(record["timings"]) == {"serial", "threaded"}


# -- CLI surface -------------------------------------------------------------

def test_cli_bench_kernels_threads_flag(capsys):
    from repro.cli import main

    assert main(["bench-kernels", "--rows", "400", "--dims", "3",
                 "--threads", "2"]) == 0
    out = capsys.readouterr().out
    assert "d= 3" in out


def test_cli_list_backends_reports_thread_layer(capsys):
    from repro.cli import main

    assert main(["bench-kernels", "--list-backends"]) == 0
    out = capsys.readouterr().out
    lines = dict(line.strip().split(": ", 1)
                 for line in out.strip().splitlines())
    assert "threads" in lines
    assert lines["threads"].startswith("budget ")
    source = budget_source()[1]
    assert f"({source})" in lines["threads"]
    if native.parallel_available():
        assert "prange-native" in lines["threads"]
    else:
        assert "tiled" in lines["threads"]
