"""Server lifecycle: drain, disconnect-cancel, deadlines, pool teardown.

The three robustness properties a long-lived service must pin:

* shutdown drains in-flight queries and leaks no shared-memory
  segments (the ``pool_segments`` check from ``conftest``);
* a client that disconnects mid-query cancels that query through the
  shared :class:`~repro.engine.context.CancellationToken` instead of
  burning a worker thread to completion;
* a request that exceeds its deadline gets a *structured* timeout
  error and the connection stays usable.

The ``WorkerPool`` teardown-ordering regressions live here too: with a
server handle, the pool's own atexit hook and explicit
``shutdown_default_pool`` calls all racing at interpreter exit, close
must be idempotent and thread-safe, and an in-flight pooled query must
fail with ``QueryCancelled`` -- not a worker-death error -- when the
pool closes under it.
"""

from __future__ import annotations

import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.relation import Relation
from repro.data import anticorrelated
from repro.engine.errors import QueryCancelled
from repro.engine.pool import WorkerPool, pool_available
from repro.server import SkylineClient, SkylineServer, serve_in_thread

from conftest import pool_segments

NAMES = list("abcde")
SLOW_STATEMENT = "SELECT * FROM slow PREFERRING a * b * c * d * e"


def _slow_relation(rows: int = 16_000) -> Relation:
    """Anticorrelated data whose Pareto skyline is huge: BNL takes a
    couple of seconds, which is an eternity for a cancellation."""
    rng = np.random.default_rng(3)
    return Relation.from_array(anticorrelated(rows, len(NAMES), rng),
                               names=NAMES)


@pytest.fixture(scope="module")
def slow_served():
    server = SkylineServer(port=0, algorithm="bnl", max_inflight=2)
    server.register("slow", _slow_relation())
    with serve_in_thread(server) as handle:
        yield server, handle


# -- deadlines ---------------------------------------------------------------

def test_deadline_returns_structured_timeout(slow_served):
    _, handle = slow_served
    with SkylineClient(handle.address) as client:
        started = time.monotonic()
        response = client.query(SLOW_STATEMENT, timeout=0.05,
                                no_cache=True, raise_errors=False)
        elapsed = time.monotonic() - started
        assert not response["ok"]
        assert response["error"]["code"] == "timeout"
        assert elapsed < 5.0  # did not run to completion
        # the connection survives the timeout
        assert client.ping()


def test_server_default_timeout():
    server = SkylineServer(port=0, algorithm="bnl",
                           default_timeout=0.05)
    server.register("slow", _slow_relation(8_000))
    with serve_in_thread(server) as handle:
        with SkylineClient(handle.address) as client:
            response = client.query(SLOW_STATEMENT, no_cache=True,
                                    raise_errors=False)
            assert response["error"]["code"] == "timeout"


# -- disconnect cancels ------------------------------------------------------

def test_client_disconnect_cancels_query(slow_served):
    server, handle = slow_served
    before = server.stats()["counters"]["cancelled"]
    client = SkylineClient(handle.address)
    client.send_only({"statement": SLOW_STATEMENT, "no_cache": True})
    time.sleep(0.3)  # the query is now running in a worker thread
    client.close()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if server.stats()["counters"]["cancelled"] > before:
            break
        time.sleep(0.05)
    assert server.stats()["counters"]["cancelled"] > before


def test_pipelined_request_not_lost(slow_served):
    """Bytes arriving while a query runs are the *next* request, not a
    disconnect: they must be buffered and answered in order."""
    _, handle = slow_served
    with SkylineClient(handle.address) as client:
        client.send_only({"id": 1, "statement": SLOW_STATEMENT,
                          "timeout": 0.2, "no_cache": True})
        client.send_only({"id": 2, "op": "ping"})
        from repro.server.protocol import read_frame

        first = read_frame(client._sock)
        second = read_frame(client._sock)
        assert first["id"] == 1 and not first["ok"]
        assert second["id"] == 2 and second["pong"]


# -- drain on shutdown -------------------------------------------------------

def test_stop_drains_inflight_queries():
    server = SkylineServer(port=0, max_inflight=2)
    server.register("slow", _slow_relation(6_000))
    handle = serve_in_thread(server)
    with SkylineClient(handle.address,
                       socket_timeout=30.0) as client:
        client.send_only({"statement": SLOW_STATEMENT,
                          "algorithm": "sfs", "no_cache": True})
        time.sleep(0.2)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        from repro.server.protocol import read_frame

        response = read_frame(client._sock)
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        # the in-flight query completed (drained), successfully
        assert response is not None and response["ok"]
    handle.stop()  # idempotent


@pytest.mark.skipif(not pool_available(), reason="needs multiprocessing")
def test_pooled_serving_leaks_no_segments():
    from repro.engine.pool import shutdown_default_pool

    server = SkylineServer(port=0)
    rng = np.random.default_rng(9)
    server.register("t", Relation.from_array(
        rng.normal(size=(4_000, 3)), names=list("abc")))
    with serve_in_thread(server) as handle:
        with SkylineClient(handle.address) as client:
            response = client.query(
                "SELECT * FROM t PREFERRING a & (b * c)",
                algorithm="parallel-osdc", no_cache=True)
            assert response["ok"]
    shutdown_default_pool()
    assert pool_segments() == []


# -- WorkerPool teardown regressions -----------------------------------------

@pytest.mark.skipif(not pool_available(), reason="needs multiprocessing")
def test_pool_close_is_thread_safe():
    pool = WorkerPool(2)
    errors: list[BaseException] = []

    def closer() -> None:
        try:
            pool.close()
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=closer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert pool.closed
    assert pool.live_segments() == ()
    assert pool_segments() == []


@pytest.mark.skipif(not pool_available(), reason="needs multiprocessing")
def test_pool_close_cancels_inflight_query():
    from repro.core.parser import parse
    from repro.core.pgraph import PGraph

    pool = WorkerPool(2)
    graph = PGraph.from_expression(parse("A0 & A1"))
    ranks = np.random.default_rng(0).normal(size=(300_000, 2))
    seen: list[BaseException] = []

    def runner() -> None:
        try:
            while True:
                pool.run_query(ranks, graph, chunks=8)
        except BaseException as error:  # noqa: BLE001
            seen.append(error)

    thread = threading.Thread(target=runner)
    thread.start()
    time.sleep(0.4)
    pool.close()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert seen
    error = seen[0]
    # the clean outcomes are QueryCancelled (mid-query) or a plain
    # "pool is closed" (between queries) -- never a worker-death error
    assert "died" not in str(error), error
    assert isinstance(error, QueryCancelled) or \
        "closed" in str(error), error
    assert pool_segments() == []


_EXIT_SCRIPT = r"""
import sys
import numpy as np
from repro.core.relation import Relation
from repro.engine.pool import get_default_pool, shutdown_default_pool
from repro.server import SkylineServer, SkylineClient, serve_in_thread

server = SkylineServer(port=0)
rng = np.random.default_rng(1)
server.register("t", Relation.from_array(rng.normal(size=(2000, 3)),
                                         names=list("abc")))
handle = serve_in_thread(server)
with SkylineClient(handle.address) as client:
    response = client.query("SELECT * FROM t PREFERRING a & b",
                            algorithm="parallel-osdc")
    assert response["ok"]
pool = get_default_pool()
# Pile up the cleanup layers the way a sloppy embedder would: explicit
# shutdown AND the pool atexit hook AND the server handle atexit hook.
shutdown_default_pool()
pool.close()
print("CLEAN-EXIT-SENTINEL")
# exit WITHOUT calling handle.stop(): the atexit hooks must cope
"""


@pytest.mark.skipif(not pool_available(), reason="needs multiprocessing")
def test_interpreter_exit_with_server_and_pool_is_clean():
    """Satellite regression: with both the server and the pool holding
    atexit cleanup, interpreter exit must not raise (double-close)."""
    result = subprocess.run(
        [sys.executable, "-c", _EXIT_SCRIPT],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "CLEAN-EXIT-SENTINEL" in result.stdout
    assert "Traceback" not in result.stderr, result.stderr


def test_server_handle_stop_idempotent_and_concurrent():
    server = SkylineServer(port=0)
    rng = np.random.default_rng(2)
    server.register("t", Relation.from_array(rng.normal(size=(100, 2)),
                                             names=["a", "b"]))
    handle = serve_in_thread(server)
    address = handle.address
    with SkylineClient(address) as client:
        assert client.ping()
    threads = [threading.Thread(target=handle.stop) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in threads)
    handle.stop()  # and once more, for good measure
    # the listener is gone
    with pytest.raises(OSError):
        socket.create_connection(address, timeout=0.5)


def test_protocol_oversize_header_drops_connection():
    server = SkylineServer(port=0)
    rng = np.random.default_rng(4)
    server.register("t", Relation.from_array(rng.normal(size=(10, 2)),
                                             names=["a", "b"]))
    with serve_in_thread(server) as handle:
        with socket.create_connection(handle.address, timeout=5) as sock:
            sock.sendall(struct.pack(">I", 2 ** 31))
            sock.settimeout(5)
            assert sock.recv(1) == b""
        # and the server still accepts fresh connections
        with SkylineClient(handle.address) as client:
            assert client.ping()
