"""Tests for the p-graph topology profiler."""

import pytest

from repro.sampling.topology import topology_profile


class TestExactProfiles:
    def test_d1(self):
        profile = topology_profile(1)
        assert profile.exact
        assert profile.roots == {1: 1.0}
        assert profile.edges_mean == 0.0
        assert profile.weak_order_share == 1.0

    def test_d2(self):
        # three p-graphs: A*B (2 roots), A&B, B&A (1 root each)
        profile = topology_profile(2)
        assert profile.samples == 3
        assert profile.roots[1] == pytest.approx(2 / 3)
        assert profile.roots[2] == pytest.approx(1 / 3)
        assert profile.roots_mean == pytest.approx(4 / 3)
        assert profile.edges_mean == pytest.approx(2 / 3)

    def test_d3_known_values(self):
        profile = topology_profile(3)
        assert profile.samples == 19
        assert sum(profile.roots.values()) == pytest.approx(1.0)
        # 13 of the 19 p-graphs on 3 attributes are weak orders
        assert profile.weak_order_share == pytest.approx(13 / 19)


class TestMonteCarloProfiles:
    def test_matches_exact_at_boundary(self):
        exact = topology_profile(4)
        sampled = topology_profile(4, samples=4000, seed=1)
        # force the Monte-Carlo path by pretending d is large: compare
        # the exact d=4 profile with sampling from the same distribution
        from repro.sampling.exact_counting import ExactUniformSampler
        import random
        from collections import Counter
        sampler = ExactUniformSampler([f"A{i}" for i in range(4)])
        rng = random.Random(1)
        counts = Counter(sampler.sample_graph(rng).num_roots
                         for _ in range(4000))
        for k, probability in exact.roots.items():
            assert counts[k] / 4000 == pytest.approx(probability,
                                                     abs=0.03)
        assert sampled.exact  # d=4 itself still uses enumeration

    def test_roots_grow_sublinearly(self):
        small = topology_profile(4)
        large = topology_profile(10, samples=800, seed=2)
        assert large.roots_mean > small.roots_mean
        assert large.roots_mean < 10 / 2  # far below d

    def test_weak_orders_vanish(self):
        assert topology_profile(10, samples=800,
                                seed=3).weak_order_share < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            topology_profile(0)
