"""Tests for PSCREEN (Section 4), its invariants and base cases."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms.pscreen import PScreener, pscreen, split_threshold
from repro.core.bitsets import iter_bits
from repro.core.dominance import Dominance
from repro.core.parser import parse
from repro.core.pgraph import PGraph


def build_problem(rng, nrng, d=None, n=None, domain=None):
    """A random valid p-screening problem: split on a root attribute so
    that every B tuple is strictly better than every W tuple on it."""
    d = d or rng.randint(1, 6)
    names = [f"A{i}" for i in range(d)]
    graph = PGraph.from_expression(random_expression(names, rng),
                                   names=names)
    n = n or rng.randint(2, 150)
    domain = domain or rng.choice([2, 4, 40])
    ranks = nrng.integers(0, domain, size=(n, d)).astype(float)
    root = next(iter_bits(graph.roots))
    column = ranks[:, root]
    if column.min() == column.max():
        return None
    tau = split_threshold(column)
    b_idx = np.flatnonzero(column < tau)
    w_idx = np.flatnonzero(column >= tau)
    return ranks, graph, b_idx, w_idx


def reference_survivors(ranks, graph, b_idx, w_idx):
    dominance = Dominance(graph)
    keep = dominance.screen_block(ranks[w_idx], ranks[b_idx])
    return set(w_idx[keep].tolist())


class TestSplitThreshold:
    def test_median_split(self):
        values = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        tau = split_threshold(values)
        assert (values < tau).any() and (values >= tau).any()

    def test_duplicate_heavy_split_progresses(self):
        values = np.array([1.0] * 10 + [2.0])
        tau = split_threshold(values)
        assert tau == 2.0
        assert (values < tau).sum() == 10

    def test_two_values(self):
        values = np.array([7.0, 3.0])
        tau = split_threshold(values)
        assert (values < tau).sum() == 1


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_quadratic_oracle(self, seed, rng, nrng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        for _ in range(15):
            problem = build_problem(rng, nrng)
            if problem is None:
                continue
            ranks, graph, b_idx, w_idx = problem
            expected = reference_survivors(ranks, graph, b_idx, w_idx)
            got = set(pscreen(ranks, graph, b_idx, w_idx).tolist())
            assert got == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_recursive_paths_forced(self, seed, rng, nrng):
        """dense_cutoff=0 forces the full recursion incl. Lemma 3/4 cases."""
        rng.seed(seed + 100)
        nrng = np.random.default_rng(seed + 100)
        for _ in range(12):
            problem = build_problem(rng, nrng)
            if problem is None:
                continue
            ranks, graph, b_idx, w_idx = problem
            expected = reference_survivors(ranks, graph, b_idx, w_idx)
            screener = PScreener(graph, dense_cutoff=0)
            got = set(screener.screen(ranks, b_idx, w_idx).tolist())
            assert got == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_without_lowdim(self, seed, rng, nrng):
        rng.seed(seed + 200)
        nrng = np.random.default_rng(seed + 200)
        problem = build_problem(rng, nrng, d=5, n=200)
        if problem is None:
            pytest.skip("degenerate root column")
        ranks, graph, b_idx, w_idx = problem
        expected = reference_survivors(ranks, graph, b_idx, w_idx)
        screener = PScreener(graph, use_lowdim=False, dense_cutoff=0)
        got = set(screener.screen(ranks, b_idx, w_idx).tolist())
        assert got == expected

    def test_empty_sides(self):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = np.ones((4, 2))
        screener = PScreener(graph)
        assert screener.screen(ranks, np.array([0]),
                               np.array([], dtype=np.intp)).size == 0
        assert screener.screen(ranks, np.array([], dtype=np.intp),
                               np.array([1, 2])).tolist() == [1, 2]

    def test_singleton_b(self, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 5.0], [2.0, 0.0]])
        survivors = pscreen(ranks, graph, np.array([0]),
                            np.array([1, 2, 3]))
        assert survivors.size == 0


class TestStats:
    def test_counters_filled(self, rng, nrng):
        from repro.algorithms.base import Stats
        problem = build_problem(rng, nrng, d=5, n=400, domain=50)
        assert problem is not None
        ranks, graph, b_idx, w_idx = problem
        stats = Stats()
        screener = PScreener(graph, dense_cutoff=64)
        screener.screen(ranks, b_idx, w_idx, stats=stats)
        assert stats.recursive_calls >= 1
