"""Tests for the Preference SQL engine."""

import numpy as np
import pytest

from repro.core.attributes import highest, lowest, ranked
from repro.core.relation import Relation
from repro.sql import (PreferenceSQL, SqlExecutionError, SqlSyntaxError,
                       parse_query)


@pytest.fixture
def db():
    engine = PreferenceSQL()
    schema = [lowest("id"), lowest("price"), lowest("mileage"),
              highest("hp"),
              ranked("transmission", ["manual", "automatic"])]
    cars = Relation.from_records(
        [
            {"id": 1, "price": 11500, "mileage": 50000, "hp": 150,
             "transmission": "automatic"},
            {"id": 2, "price": 11500, "mileage": 60000, "hp": 190,
             "transmission": "manual"},
            {"id": 3, "price": 12000, "mileage": 50000, "hp": 190,
             "transmission": "manual"},
            {"id": 4, "price": 12000, "mileage": 60000, "hp": 120,
             "transmission": "automatic"},
        ],
        schema,
    )
    engine.register("cars", cars)
    return engine


def ids(relation):
    return sorted(r["id"] for r in relation.to_records())


class TestParser:
    def test_full_statement(self):
        query = parse_query(
            "SELECT id, price FROM cars WHERE price < 12000 "
            "PREFERRING lowest(price) & transmission TOP 3")
        assert query.columns == ("id", "price")
        assert query.table == "cars"
        assert query.where is not None
        assert query.preferring is not None
        assert query.top == 3

    def test_star_projection(self):
        assert parse_query("SELECT * FROM t").columns is None

    def test_keywords_case_insensitive(self):
        query = parse_query("select * from t where a >= 1 and b = 'x'")
        assert query.where is not None

    @pytest.mark.parametrize("bad", [
        "", "SELECT", "SELECT * WHERE a=1", "SELECT * FROM",
        "SELECT * FROM t WHERE", "SELECT * FROM t TOP -1",
        "SELECT * FROM t TOP 1.5", "SELECT * FROM t extra",
        "SELECT * FROM t WHERE a ==", "SELECT * FROM t WHERE a < b",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_query(bad)

    def test_literal_on_the_left_flips(self):
        query = parse_query("SELECT * FROM t WHERE 100 < price")
        assert query.where.operator == ">"
        assert query.where.column == "price"


class TestWhere:
    def test_numeric_filters(self, db):
        result = db.execute("SELECT * FROM cars WHERE price <= 11500")
        assert ids(result) == [1, 2]
        result = db.execute(
            "SELECT * FROM cars WHERE price <= 11500 AND mileage < 60000")
        assert ids(result) == [1]

    def test_or_and_not(self, db):
        result = db.execute(
            "SELECT * FROM cars WHERE id = 1 OR id = 4")
        assert ids(result) == [1, 4]
        result = db.execute("SELECT * FROM cars WHERE NOT (id = 1)")
        assert ids(result) == [2, 3, 4]

    def test_string_equality_on_ranked(self, db):
        result = db.execute(
            "SELECT * FROM cars WHERE transmission = 'manual'")
        assert ids(result) == [2, 3]

    def test_unknown_ranked_value_matches_nothing(self, db):
        result = db.execute(
            "SELECT * FROM cars WHERE transmission = 'cvt'")
        assert len(result) == 0

    def test_max_column_compares_on_raw_values(self, db):
        result = db.execute("SELECT * FROM cars WHERE hp >= 190")
        assert ids(result) == [2, 3]

    def test_type_mismatches(self, db):
        with pytest.raises(SqlExecutionError, match="numeric"):
            db.execute("SELECT * FROM cars WHERE price = 'cheap'")
        with pytest.raises(SqlExecutionError, match="ranked"):
            db.execute("SELECT * FROM cars WHERE transmission = 3")

    def test_unknown_column(self, db):
        with pytest.raises(SqlExecutionError, match="unknown column"):
            db.execute("SELECT * FROM cars WHERE nope = 1")


class TestPreferring:
    def test_paper_example1_via_sql(self, db):
        result = db.execute(
            "SELECT id FROM cars "
            "PREFERRING (lowest(price) & transmission) * lowest(mileage)")
        assert ids(result) == [1, 2]

    def test_where_then_preferring(self, db):
        result = db.execute(
            "SELECT id FROM cars WHERE mileage = 50000 "
            "PREFERRING lowest(price)")
        assert ids(result) == [1]

    def test_top_k_orders_by_extension(self, db):
        result = db.execute(
            "SELECT id FROM cars "
            "PREFERRING lowest(price) * lowest(mileage) TOP 1")
        assert ids(result) == [1]

    def test_top_without_preferring_truncates(self, db):
        result = db.execute("SELECT id FROM cars TOP 2")
        assert len(result) == 2

    def test_highest_direction_in_clause(self, db):
        result = db.execute(
            "SELECT id, hp FROM cars PREFERRING highest(hp)")
        assert sorted(r["hp"] for r in result.to_records()) == [190, 190]


class TestCatalog:
    def test_unknown_table(self, db):
        with pytest.raises(SqlExecutionError, match="unknown table"):
            db.execute("SELECT * FROM trucks")

    def test_invalid_table_name(self, db):
        with pytest.raises(ValueError):
            db.register("not a name", None)

    def test_tables_listing(self, db):
        assert db.tables() == ["cars"]

    def test_projection(self, db):
        result = db.execute("SELECT price, id FROM cars WHERE id = 3")
        assert result.names == ("price", "id")

    def test_unknown_projection_column(self, db):
        with pytest.raises(SqlExecutionError, match="SELECT"):
            db.execute("SELECT nope FROM cars")


class TestAgainstQueryApi:
    def test_sql_matches_p_skyline(self, db, nrng):
        from repro import Relation, lowest, p_skyline
        relation = Relation.from_records(
            [{"a": int(a), "b": int(b), "c": int(c)}
             for a, b, c in nrng.integers(0, 6, size=(300, 3))],
            [lowest("a"), lowest("b"), lowest("c")],
        )
        db.register("r", relation)
        via_sql = db.execute(
            "SELECT * FROM r PREFERRING lowest(a) & (lowest(b) * lowest(c))")
        via_api = p_skyline(relation, "a & (b * c)")
        key = lambda record: (record["a"], record["b"], record["c"])  # noqa: E731
        assert sorted(map(key, via_sql.to_records())) == \
            sorted(map(key, via_api.to_records()))


class TestOrderBy:
    def test_order_by_ascending_default(self, db):
        result = db.execute("SELECT id FROM cars ORDER BY price")
        prices = [r["id"] for r in result.to_records()]
        assert prices[:2] == [1, 2] or prices[:2] == [2, 1]

    def test_order_by_desc(self, db):
        result = db.execute(
            "SELECT id, mileage FROM cars ORDER BY mileage DESC")
        mileages = [r["mileage"] for r in result.to_records()]
        assert mileages == sorted(mileages, reverse=True)

    def test_order_by_on_max_column_uses_preference(self, db):
        # hp is highest-preferred: ascending order = best (largest) first
        result = db.execute("SELECT hp FROM cars ORDER BY hp ASC")
        hps = [r["hp"] for r in result.to_records()]
        assert hps == sorted(hps, reverse=True)

    def test_order_by_after_preferring(self, db):
        result = db.execute(
            "SELECT id FROM cars "
            "PREFERRING (lowest(price) & transmission) * lowest(mileage) "
            "ORDER BY id TOP 1")
        assert ids(result) == [1]

    def test_order_by_unknown_column(self, db):
        import pytest as _pytest
        with _pytest.raises(SqlExecutionError, match="ORDER BY"):
            db.execute("SELECT id FROM cars ORDER BY nope")

    def test_order_by_with_top_truncates_after_sort(self, db):
        result = db.execute(
            "SELECT id FROM cars ORDER BY mileage TOP 2")
        mileage_sorted = db.execute(
            "SELECT id FROM cars ORDER BY mileage")
        assert ids(result) == sorted(
            r["id"] for r in mileage_sorted.to_records()[:2])
