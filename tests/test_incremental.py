"""Tests for incremental p-skyline maintenance."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import naive
from repro.algorithms.incremental import PSkylineMaintainer
from repro.core.parser import parse
from repro.core.pgraph import PGraph


def reference_skyline(maintainer, ranks_by_id):
    alive_ids = sorted(i for i in ranks_by_id if i in maintainer)
    if not alive_ids:
        return set()
    block = np.array([ranks_by_id[i] for i in alive_ids])
    local = naive(block, maintainer.graph)
    return {alive_ids[i] for i in local.tolist()}


class TestInsert:
    def test_first_insert_is_maximal(self):
        graph = PGraph.from_expression(parse("A * B"))
        maintainer = PSkylineMaintainer(graph)
        tuple_id = maintainer.insert([1.0, 2.0])
        assert maintainer.skyline_ids().tolist() == [tuple_id]

    def test_dominated_insert_is_shadowed(self):
        graph = PGraph.from_expression(parse("A & B"))
        maintainer = PSkylineMaintainer(graph)
        maintainer.insert([0.0, 0.0])
        shadowed = maintainer.insert([1.0, 0.0])
        assert shadowed not in set(maintainer.skyline_ids().tolist())
        assert shadowed in maintainer  # retained, still alive

    def test_insert_evicts_dominated(self):
        graph = PGraph.from_expression(parse("A & B"))
        maintainer = PSkylineMaintainer(graph)
        old = maintainer.insert([1.0, 1.0])
        new = maintainer.insert([0.0, 5.0])
        assert maintainer.skyline_ids().tolist() == [new]
        assert old in maintainer

    def test_duplicates_coexist(self):
        graph = PGraph.from_expression(parse("A * B"))
        maintainer = PSkylineMaintainer(graph)
        first = maintainer.insert([1.0, 1.0])
        second = maintainer.insert([1.0, 1.0])
        assert maintainer.skyline_ids().tolist() == [first, second]

    def test_validation(self):
        graph = PGraph.from_expression(parse("A * B"))
        maintainer = PSkylineMaintainer(graph)
        with pytest.raises(ValueError):
            maintainer.insert([1.0])
        with pytest.raises(ValueError):
            maintainer.insert([1.0, np.nan])


class TestDelete:
    def test_delete_shadowed_is_cheap(self):
        graph = PGraph.from_expression(parse("A & B"))
        maintainer = PSkylineMaintainer(graph)
        top = maintainer.insert([0.0, 0.0])
        shadowed = maintainer.insert([1.0, 0.0])
        maintainer.delete(shadowed)
        assert maintainer.skyline_ids().tolist() == [top]
        assert shadowed not in maintainer

    def test_delete_skyline_member_promotes(self):
        graph = PGraph.from_expression(parse("A & B"))
        maintainer = PSkylineMaintainer(graph)
        top = maintainer.insert([0.0, 0.0])
        middle = maintainer.insert([1.0, 0.0])
        bottom = maintainer.insert([1.0, 1.0])
        maintainer.delete(top)
        assert maintainer.skyline_ids().tolist() == [middle]
        maintainer.delete(middle)
        assert maintainer.skyline_ids().tolist() == [bottom]

    def test_delete_unknown_id(self):
        graph = PGraph.from_expression(parse("A"))
        maintainer = PSkylineMaintainer(graph)
        with pytest.raises(KeyError):
            maintainer.delete(0)
        tuple_id = maintainer.insert([1.0])
        maintainer.delete(tuple_id)
        with pytest.raises(KeyError):
            maintainer.delete(tuple_id)


@pytest.mark.parametrize("seed", range(6))
def test_random_workload_matches_recomputation(seed, rng, nrng):
    rng.seed(seed)
    nrng = np.random.default_rng(seed)
    d = rng.randint(1, 5)
    names = [f"A{i}" for i in range(d)]
    graph = PGraph.from_expression(random_expression(names, rng),
                                   names=names)
    maintainer = PSkylineMaintainer(graph, capacity=4)
    ranks_by_id = {}
    for step in range(150):
        alive = sorted(i for i in ranks_by_id if i in maintainer)
        if alive and rng.random() < 0.35:
            victim = rng.choice(alive)
            maintainer.delete(victim)
            del ranks_by_id[victim]
        else:
            values = nrng.integers(0, 4, size=d).astype(float)
            tuple_id = maintainer.insert(values)
            ranks_by_id[tuple_id] = values
        expected = reference_skyline(maintainer, ranks_by_id)
        got = set(maintainer.skyline_ids().tolist())
        assert got == expected, step
