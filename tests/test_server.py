"""The query server: protocol, differential identity, degraded answers.

The central axis here is *differential*: for every non-shed request the
server's answer must be byte-identical to what the library's
:class:`~repro.sql.PreferenceSQL` returns for the same statement -- the
server adds transport, caching and scheduling, never semantics.  The
shed path is checked against the progressive oracle: a degraded answer
must be a ``≻ext``-sorted prefix of the exact skyline.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.core.preferring import evaluate_preferring
from repro.core.relation import Relation
from repro.core.sharding import ShardedRelation
from repro.engine.compiled import compile_preference
from repro.server import (MAX_FRAME, ProtocolError, SkylineClient,
                          SkylineServer, decode_frame, encode_frame,
                          serve_in_thread)
from repro.server.service import _clause_graph, serialize_relation
from repro.sql import PreferenceSQL

from conftest import random_expression


# -- protocol ----------------------------------------------------------------

def test_frame_round_trip():
    message = {"id": 3, "statement": "SELECT * FROM t", "timeout": 1.5}
    framed = encode_frame(message)
    (length,) = struct.unpack(">I", framed[:4])
    assert length == len(framed) - 4
    assert decode_frame(framed[4:]) == message


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError):
        decode_frame(json.dumps([1, 2, 3]).encode())
    with pytest.raises(ProtocolError):
        decode_frame(b"\xff not json")


def test_oversize_frame_rejected():
    from repro.server.protocol import check_length

    with pytest.raises(ProtocolError):
        check_length(MAX_FRAME + 1)
    assert check_length(MAX_FRAME) == MAX_FRAME


# -- served catalog fixture --------------------------------------------------

NAMES = ["a", "b", "c", "d"]


def _relation(rows: int = 400, seed: int = 11) -> Relation:
    rng = np.random.default_rng(seed)
    return Relation.from_array(rng.normal(size=(rows, len(NAMES))),
                               names=NAMES)


@pytest.fixture(scope="module")
def served():
    relation = _relation()
    sharded = ShardedRelation.from_relation(_relation(seed=12), shards=3)
    server = SkylineServer(port=0)
    server.register("flat", relation)
    server.register("sharded", sharded)
    library = PreferenceSQL()
    library.register("flat", relation)
    library.register("sharded", sharded)
    with serve_in_thread(server) as handle:
        with SkylineClient(handle.address) as client:
            yield server, client, library


# -- operational requests ----------------------------------------------------

def test_ops(served):
    server, client, _ = served
    assert client.ping()
    assert client.tables() == ["flat", "sharded"]
    stats = client.stats()
    assert stats["tables"] == ["flat", "sharded"]
    assert "counters" in stats and "cache" in stats


def test_unknown_op_and_missing_statement(served):
    _, client, _ = served
    response = client.request({"op": "nope"}, raise_errors=False)
    assert not response["ok"]
    assert response["error"]["code"] == "protocol"
    response = client.request({"hello": 1}, raise_errors=False)
    assert not response["ok"]
    assert response["error"]["code"] == "protocol"


# -- the differential axis: server == library --------------------------------

STATEMENTS = [
    "SELECT * FROM flat PREFERRING a",
    "SELECT * FROM flat PREFERRING a & (b * c)",
    "SELECT * FROM flat PREFERRING lowest(a) * highest(b)",
    "SELECT a, c FROM flat WHERE b < 0.5 PREFERRING a & c",
    "SELECT * FROM flat PREFERRING (a & b) * (c & d) TOP 7",
    "SELECT * FROM flat WHERE a > -1 ORDER BY b ASC",
    "SELECT b FROM flat WHERE a < 0 AND c > -2 PREFERRING b TOP 3",
    "SELECT * FROM sharded PREFERRING a & b",
    "SELECT a, d FROM sharded WHERE c < 1 PREFERRING a * d TOP 5",
    "SELECT * FROM sharded PREFERRING highest(c) & lowest(d)",
]


@pytest.mark.parametrize("statement", STATEMENTS)
def test_server_matches_library(served, statement):
    _, client, library = served
    response = client.query(statement, no_cache=True)
    expected = serialize_relation(library.execute(statement))
    assert response["columns"] == expected["columns"]
    assert response["rows"] == expected["rows"]
    assert response["partial"] is False


def test_server_matches_library_random(served, rng):
    _, client, library = served
    for _ in range(8):
        count = rng.randint(1, len(NAMES))
        expression = random_expression(rng.sample(NAMES, count), rng)
        statement = f"SELECT * FROM flat PREFERRING {expression}"
        response = client.query(statement, no_cache=True)
        expected = serialize_relation(library.execute(statement))
        assert response["rows"] == expected["rows"], statement


def test_cached_answer_identical(served):
    server, client, library = served
    statement = "SELECT * FROM flat PREFERRING a & (c * d)"
    first = client.query(statement)
    second = client.query(statement)
    assert second["cached"] is True
    assert first["rows"] == second["rows"]
    assert second["rows"] == \
        serialize_relation(library.execute(statement))["rows"]
    # cached answers still report the miss's work counters
    assert second["stats"]["dominance_tests"] == \
        first["stats"]["dominance_tests"] or first["cached"]


def test_algorithm_override(served):
    _, client, library = served
    statement = "SELECT * FROM flat PREFERRING a & b"
    for algorithm in ("bnl", "sfs", "osdc"):
        response = client.query(statement, algorithm=algorithm,
                                no_cache=True)
        assert response["rows"] == \
            serialize_relation(library.execute(statement))["rows"]


# -- degraded answers under admission control --------------------------------

SHED_STATEMENTS = [
    "SELECT * FROM flat PREFERRING a * b * c",
    "SELECT * FROM flat WHERE d < 1 PREFERRING a & (b * c)",
    "SELECT a, b FROM flat PREFERRING a * b",
    "SELECT * FROM sharded PREFERRING a * b * c * d",
]


@pytest.mark.parametrize("statement", SHED_STATEMENTS)
def test_shed_answer_is_ext_sorted_skyline_prefix(served, statement):
    server, client, library = served
    server.force_shed = True
    try:
        degraded = client.query(statement, no_cache=True)
    finally:
        server.force_shed = False
    assert degraded["partial"] is True
    assert "admission control" in degraded["reason"]
    assert len(degraded["rows"]) <= server.shed_prefix

    # 1. every degraded row belongs to the exact skyline ...
    exact = client.query(statement, no_cache=True)
    assert exact["partial"] is False
    skyline = {tuple(row) for row in exact["rows"]}
    assert all(tuple(row) in skyline for row in degraded["rows"])

    # 2. ... and the degraded answer is exactly the first-k skyline
    #    members in ≻ext order (the progressive oracle): rebuild the
    #    clause's (graph, matrix) the way the engine does, rank rows by
    #    the compiled extension order, and filter to skyline members.
    query = server._parse(statement)
    relation = library.relation(query.table)
    if isinstance(relation, ShardedRelation):
        with relation.snapshot() as snapshot:
            order = np.argsort(snapshot.global_ids, kind="stable")
            base = snapshot.relation.take(order)
    else:
        base = relation
    if query.where is not None:
        mask = library._evaluate(query.where, base)
        base = base.take(np.flatnonzero(mask))
    graph, matrix = _clause_graph(base, query.preferring)
    extension = compile_preference(graph).extension
    full = serialize_relation(base)["rows"]
    position_of = {tuple(row): position
                   for position, row in enumerate(full)}
    exact_skyline = evaluate_preferring(base, query.preferring)
    skyline_positions = {position_of[tuple(row)]
                         for row in
                         serialize_relation(exact_skyline)["rows"]}
    expected_positions = [
        int(p) for p in extension.argsort(matrix)
        if int(p) in skyline_positions][: len(degraded["rows"])]
    expected = base.take(np.asarray(expected_positions, dtype=np.intp))
    if query.columns is not None:
        expected = expected.project(list(query.columns))
    assert degraded["rows"] == serialize_relation(expected)["rows"]


def test_shedding_counted(served):
    server, client, _ = served
    before = server.stats()["counters"]["shed"]
    server.force_shed = True
    try:
        client.query("SELECT * FROM flat PREFERRING a & b",
                     no_cache=True)
    finally:
        server.force_shed = False
    assert server.stats()["counters"]["shed"] == before + 1


def test_non_preference_statements_not_shed(served):
    server, client, library = served
    server.force_shed = True
    try:
        statement = "SELECT * FROM flat WHERE a < 0 ORDER BY b ASC"
        response = client.query(statement, no_cache=True)
    finally:
        server.force_shed = False
    assert response["partial"] is False
    assert response["rows"] == \
        serialize_relation(library.execute(statement))["rows"]


# -- error handling ----------------------------------------------------------

def test_error_codes_and_connection_survival(served):
    _, client, _ = served
    parse = client.query("SELEKT nonsense", raise_errors=False)
    assert parse["error"]["code"] == "parse"
    missing = client.query("SELECT * FROM missing PREFERRING a",
                           raise_errors=False)
    assert missing["error"]["code"] == "execution"
    column = client.query("SELECT * FROM flat PREFERRING nosuch",
                          raise_errors=False)
    assert column["error"]["code"] in ("parse", "execution")
    # the connection survives structured errors
    assert client.ping()


def test_bad_request_fields(served):
    _, client, _ = served
    response = client.request({"statement": 17}, raise_errors=False)
    assert response["error"]["code"] == "protocol"
    response = client.request(
        {"statement": "SELECT * FROM flat", "timeout": -2},
        raise_errors=False)
    assert response["error"]["code"] == "protocol"


def test_malformed_frame_drops_connection(served):
    server, _, _ = served
    host, port = server.address
    import socket

    with socket.create_connection((host, port), timeout=5) as sock:
        payload = b"this is not json"
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        sock.settimeout(5)
        assert sock.recv(1) == b""  # server closed on us
