"""Tests for the persistent shared-memory worker pool (engine.pool)."""

import glob
import os
import threading
import time

import numpy as np
import pytest

from conftest import pool_segments, random_expression
from repro import Relation, p_skyline, p_skyline_batch
from repro.algorithms import naive, osdc
from repro.algorithms.parallel import parallel_osdc
from repro.algorithms.base import Stats
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.engine import (CancellationToken, ExecutionContext,
                          QueryCancelled, QueryTimeout, WorkerPool,
                          get_default_pool, shutdown_default_pool)
# segment enumeration lives in conftest so the sharding tests share it
_our_segments = pool_segments


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(2) as pool:
        yield pool


class TestEquivalenceProperty:
    """Pool result == serial OSDC, across kernels x chunk counts x
    interruption modes (the satellite equivalence property)."""

    @pytest.mark.parametrize("kernel", ["bitmask", "gemm"])
    @pytest.mark.parametrize("chunks", [1, 2, 4])
    @pytest.mark.parametrize("with_deadline", [False, True])
    def test_matches_serial_osdc(self, pool, kernel, chunks,
                                 with_deadline, rng):
        rng.seed(1000 * chunks + (kernel == "gemm"))
        nrng = np.random.default_rng(17 + chunks)
        d = rng.randint(2, 5)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 12, size=(1500, d)).astype(float)
        expected = osdc(ranks, graph, kernel=kernel).tolist()
        stats = Stats()
        if with_deadline:
            context = ExecutionContext.create(stats=stats, timeout=120.0)
        else:
            context = ExecutionContext(stats=stats)
        got = pool.run_query(ranks, graph, chunks=chunks,
                             options={"kernel": kernel}, context=context)
        assert got.tolist() == expected
        assert stats.extra["pool"]["chunks"] == chunks
        assert stats.extra["kernel"] == kernel

    @pytest.mark.parametrize("seed", range(3))
    def test_parallel_osdc_matches_naive(self, seed, rng, nrng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(1, 5)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 10, size=(2500, d)).astype(float)
        expected = set(naive(ranks, graph).tolist())
        got = parallel_osdc(ranks, graph, processes=4, min_chunk=64)
        assert set(got.tolist()) == expected


class TestWorkerStatsAggregation:
    def test_chunk_skylines_kernel_and_per_worker_counts(self, pool, nrng):
        graph = PGraph.from_expression(parse("A & (B * C)"))
        ranks = nrng.integers(0, 40, size=(4000, 3)).astype(float)
        stats = Stats()
        context = ExecutionContext(stats=stats)
        result = pool.run_query(ranks, graph, chunks=4, context=context)
        assert len(stats.extra["chunk_skylines"]) == 4
        assert stats.extra["kernel"] is not None
        per_worker = stats.extra["pool"]["per_worker_dominance_tests"]
        assert sum(per_worker.values()) == stats.dominance_tests
        assert stats.dominance_tests > 0
        # the partition identity: chunk skylines bound the merge input
        assert result.size <= sum(stats.extra["chunk_skylines"])
        assert stats.extra["pool"]["merge_rounds"] == 2

    def test_no_double_counted_merge_pass(self, pool, nrng):
        """Parent-side bookkeeping must not inflate worker counters."""
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 30, size=(2000, 2)).astype(float)
        stats = Stats()
        pool.run_query(ranks, graph, chunks=2,
                       context=ExecutionContext(stats=stats))
        # passes are exactly the workers' own counts (2 chunks + 1 merge
        # tasks, each contributing what its inner OSDC recorded)
        worker_total = sum(
            stats.extra["pool"]["per_worker_dominance_tests"].values())
        assert stats.dominance_tests == worker_total


class TestInterruption:
    def test_cancel_mid_query_from_the_pool(self, nrng):
        """A token cancelled mid-flight aborts the pooled query with
        QueryCancelled and leaks no shared-memory segments."""
        before = set(_our_segments())
        graph = PGraph.from_expression(
            parse("A0 * A1 * A2 * A3 * A4 * A5"),
            names=[f"A{i}" for i in range(6)])
        ranks = nrng.normal(size=(400_000, 6))  # anticorrelated-ish, slow
        token = CancellationToken()
        context = ExecutionContext(cancel=token)
        with WorkerPool(2) as pool:
            timer = threading.Timer(0.05, token.cancel)
            timer.start()
            started = time.monotonic()
            try:
                with pytest.raises(QueryCancelled):
                    pool.run_query(ranks, graph, chunks=4,
                                   context=context)
                    token.cancel()  # pathological fast finish: re-check
                    context.check("post")
            finally:
                timer.cancel()
            # the pool reacted promptly, not after finishing the query
            assert time.monotonic() - started < 30.0
        assert set(_our_segments()) <= before  # nothing leaked

    def test_expired_deadline_raises_query_timeout(self, pool, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 30, size=(3000, 2)).astype(float)
        context = ExecutionContext(deadline=time.monotonic() - 1.0)
        with pytest.raises(QueryTimeout):
            pool.run_query(ranks, graph, chunks=2, context=context)

    def test_pool_usable_after_interruption(self, pool, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 30, size=(3000, 2)).astype(float)
        with pytest.raises(QueryTimeout):
            pool.run_query(ranks, graph, chunks=2, context=ExecutionContext(
                deadline=time.monotonic() - 1.0))
        expected = set(naive(ranks, graph).tolist())
        got = pool.run_query(ranks, graph, chunks=2)
        assert set(got.tolist()) == expected


class TestSharedMemoryLifecycle:
    def test_no_orphans_after_exception_and_shutdown(self, nrng):
        before = set(_our_segments())
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 30, size=(3000, 2)).astype(float)
        pool = WorkerPool(2)
        try:
            pool.run_query(ranks, graph, chunks=2)
            assert len(pool.live_segments()) == 1
            with pytest.raises(QueryTimeout):
                pool.run_query(ranks, graph, chunks=2,
                               context=ExecutionContext(
                                   deadline=time.monotonic() - 1.0))
        finally:
            pool.close()
        assert pool.live_segments() == ()
        assert set(_our_segments()) <= before

    def test_registration_is_cached_per_array_object(self, pool, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = np.ascontiguousarray(
            nrng.integers(0, 30, size=(3000, 2)).astype(float))
        first = pool.register(ranks)
        second = pool.register(ranks)
        assert first is second
        assert len([name for name in pool.live_segments()
                    if name == first.name]) == 1

    def test_registration_context_manager_unlinks(self, nrng):
        from repro.engine import SharedRegistration
        array = np.ascontiguousarray(nrng.random((100, 2)))
        with SharedRegistration(array) as registration:
            name = registration.name
            assert glob.glob(f"/dev/shm/{name}") or \
                not os.path.isdir("/dev/shm")
        assert not glob.glob(f"/dev/shm/{name}")

    def test_closed_pool_rejects_queries(self, nrng):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run_query(nrng.random((10, 2)),
                           PGraph.from_expression(parse("A & B")))


class TestBatchService:
    def test_map_queries_amortizes_one_registration(self, pool, nrng):
        relation = Relation.from_array(
            nrng.integers(0, 25, size=(3000, 4)).astype(float))
        queries = ["A0 & A1", "(A0 * A2) & A3", "A1 * A3"]
        results = pool.map_queries(relation, queries, min_chunk=64)
        assert len(pool.live_segments()) >= 1
        for text, indices in zip(queries, results):
            expected = p_skyline(relation, text, algorithm="naive")
            got = relation.take(indices)
            assert sorted(map(tuple, got.ranks.tolist())) == \
                sorted(map(tuple, expected.ranks.tolist()))

    def test_p_skyline_batch_matches_sequential(self, nrng):
        relation = Relation.from_array(
            nrng.integers(0, 25, size=(9000, 4)).astype(float))
        queries = ["A0 & A1", "A2 * A3"]
        stats = Stats()
        batch = p_skyline_batch(relation, queries, stats=stats,
                                min_chunk=1000)
        assert "chunk_skylines" in stats.extra  # ran on the pool
        for text, got in zip(queries, batch):
            expected = p_skyline(relation, text, algorithm="naive")
            assert sorted(map(tuple, got.ranks.tolist())) == \
                sorted(map(tuple, expected.ranks.tolist()))

    def test_p_skyline_batch_small_inputs_fall_back(self, nrng):
        relation = Relation.from_array(nrng.random((50, 3)))
        batch = p_skyline_batch(relation, ["A0 & A1", "A1 * A2"])
        assert len(batch) == 2

    def test_sql_execute_batch(self, nrng):
        from repro.sql import PreferenceSQL
        engine = PreferenceSQL()
        engine.register("cars", Relation.from_array(
            nrng.integers(0, 20, size=(400, 3)).astype(float),
            names=["price", "mileage", "age"]))
        statements = [
            "SELECT * FROM cars PREFERRING lowest(price)",
            "SELECT * FROM cars PREFERRING lowest(mileage) & lowest(age)",
        ]
        stats = Stats()
        batch = engine.execute_batch(statements, stats=stats)
        assert len(batch) == 2
        singles = [engine.execute(statement) for statement in statements]
        for got, expected in zip(batch, singles):
            assert len(got) == len(expected)
        assert stats.dominance_tests > 0  # counters accumulate across


class TestPlannerParallelRule:
    # "(A & B) * C" is NOT a weak order, so the layered rule (which
    # precedes the parallel rule) cannot shadow what we are testing.

    def test_huge_inputs_plan_parallel(self, nrng):
        from repro.planner import Planner
        planner = Planner(parallel_threshold=10_000)
        graph = PGraph.from_expression(parse("(A & B) * C"))
        ranks = nrng.integers(0, 50, size=(20_000, 3)).astype(float)
        plan = planner.plan(ranks, graph)
        assert plan.algorithm == "parallel-osdc"
        assert plan.options == {"processes": None}

    def test_threshold_disabled(self, nrng):
        from repro.planner import Planner
        planner = Planner(parallel_threshold=None)
        graph = PGraph.from_expression(parse("(A & B) * C"))
        ranks = nrng.integers(0, 50, size=(20_000, 3)).astype(float)
        assert planner.plan(ranks, graph).algorithm != "parallel-osdc"

    def test_plan_executes_on_the_pool(self, nrng):
        from repro.planner import Planner
        planner = Planner(parallel_threshold=5_000)
        graph = PGraph.from_expression(parse("(A & B) * C"))
        ranks = nrng.integers(0, 50, size=(10_000, 3)).astype(float)
        stats = Stats()
        result = planner.execute(ranks, graph, stats=stats)
        assert stats.extra["plan"]["algorithm"] == "parallel-osdc"
        assert set(result.tolist()) == set(naive(ranks, graph).tolist())


class TestCancellationTokenMirrors:
    def test_link_sets_already_cancelled(self):
        class FakeEvent:
            def __init__(self):
                self.was_set = False

            def set(self):
                self.was_set = True

        token = CancellationToken()
        token.cancel()
        event = FakeEvent()
        token.link(event)
        assert event.was_set

    def test_unlink_stops_mirroring(self):
        class FakeEvent:
            def __init__(self):
                self.was_set = False

            def set(self):
                self.was_set = True

        token = CancellationToken()
        event = FakeEvent()
        token.link(event)
        token.unlink(event)
        token.unlink(event)  # double-unlink is a no-op
        token.cancel()
        assert not event.was_set


class TestDefaultPool:
    def test_default_pool_resurrects_after_shutdown(self):
        pool = get_default_pool()
        assert not pool.closed
        shutdown_default_pool()
        assert pool.closed
        again = get_default_pool()
        assert again is not pool
        assert not again.closed
