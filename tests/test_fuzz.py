"""Heavy randomized cross-checks ("fuzzing light").

Every registered algorithm against the quadratic oracle, over the
adversarial input shapes of :mod:`repro.verify.datasets` the targeted
tests may miss: extreme duplication, constant blocks, mixed scales, many
columns, power-law values, negative values, and expressions drawn from
the exactly-uniform sampler.
"""

import random

import numpy as np
import pytest

from repro.algorithms import REGISTRY, naive
from repro.core.checks import verify_pskyline
from repro.sampling.exact_counting import ExactUniformSampler
from repro.verify.datasets import random_dataset

FAST_ALGORITHMS = sorted(set(REGISTRY) - {"naive"})


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_all_algorithms_against_oracle(seed):
    rng = random.Random(seed)
    nrng = np.random.default_rng(seed)
    for trial in range(8):
        d = rng.randint(1, 8)
        sampler = ExactUniformSampler([f"A{i}" for i in range(d)])
        graph = sampler.sample_graph(rng)
        n = rng.randint(1, 250)
        _, ranks = random_dataset(rng, nrng, n, d)
        expected = set(naive(ranks, graph).tolist())
        for name in FAST_ALGORITHMS:
            got = REGISTRY[name](ranks, graph)
            assert set(got.tolist()) == expected, \
                (seed, trial, name, d, n)
            verify_pskyline(ranks, graph, got)


def test_fuzz_wide_relations():
    """d up to 20 (the paper's maximum) with small n."""
    rng = random.Random(99)
    nrng = np.random.default_rng(99)
    for trial in range(5):
        d = rng.randint(12, 20)
        sampler = ExactUniformSampler([f"A{i}" for i in range(d)])
        graph = sampler.sample_graph(rng)
        ranks = nrng.integers(0, 3, size=(80, d)).astype(float)
        expected = set(naive(ranks, graph).tolist())
        for name in ("osdc", "dc", "sfs", "less", "bbs"):
            assert set(REGISTRY[name](ranks, graph).tolist()) == expected


def test_fuzz_identical_rows_blocks():
    """Blocks of exact duplicates must ride through every algorithm."""
    rng = random.Random(7)
    nrng = np.random.default_rng(7)
    sampler = ExactUniformSampler(["A", "B", "C"])
    for trial in range(6):
        graph = sampler.sample_graph(rng)
        base = nrng.integers(0, 3, size=(10, 3)).astype(float)
        ranks = np.repeat(base, rng.randint(1, 6), axis=0)
        expected = set(naive(ranks, graph).tolist())
        for name in FAST_ALGORITHMS:
            assert set(REGISTRY[name](ranks, graph).tolist()) == \
                expected, (trial, name)
