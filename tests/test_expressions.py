"""Unit tests for the p-expression AST (Section 2.1)."""

import pytest

from repro.core.expressions import (Att, Pareto, Prioritized,
                                    RepeatedAttributeError, lex, pareto,
                                    prioritized, sky)


class TestConstruction:
    def test_leaf(self):
        leaf = Att("price")
        assert leaf.attributes() == ("price",)
        assert leaf.edges() == set()
        assert str(leaf) == "price"

    def test_leaf_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Att("")

    def test_operator_sugar(self):
        expr = (Att("P") & Att("T")) * Att("M")
        assert isinstance(expr, Pareto)
        assert expr.attributes() == ("P", "T", "M")

    def test_flattening_is_associative(self):
        nested = pareto(pareto(Att("A"), Att("B")), Att("C"))
        flat = pareto(Att("A"), Att("B"), Att("C"))
        assert nested == flat
        assert len(nested.children) == 3

    def test_prioritized_flattening(self):
        nested = prioritized(Att("A"), prioritized(Att("B"), Att("C")))
        assert len(nested.children) == 3
        assert nested.attributes() == ("A", "B", "C")

    def test_repeated_attribute_rejected(self):
        with pytest.raises(RepeatedAttributeError):
            pareto(Att("A"), Att("A"))
        with pytest.raises(RepeatedAttributeError):
            prioritized(Att("A"), pareto(Att("B"), Att("A")))

    def test_single_operand_passthrough(self):
        assert pareto(Att("A")) == Att("A")
        assert prioritized(Att("A")) == Att("A")

    def test_composite_requires_two_operands(self):
        with pytest.raises(ValueError):
            Pareto([Att("A")])

    def test_non_expression_operand_rejected(self):
        with pytest.raises(TypeError):
            pareto(Att("A"), "B")


class TestEdges:
    def test_pareto_adds_no_edges(self):
        assert sky(["A", "B", "C"]).edges() == set()

    def test_prioritized_edges(self):
        expr = prioritized(Att("A"), Att("B"))
        assert expr.edges() == {("A", "B")}

    def test_lex_chain_is_total_order(self):
        expr = lex(["A", "B", "C"])
        assert expr.edges() == {("A", "B"), ("A", "C"), ("B", "C")}

    def test_paper_example2_edges(self):
        # M & ((D & W) * P) & (T * H)  -- Figure 1
        expr = (Att("M") & (prioritized(Att("D"), Att("W")) * Att("P"))
                & (Att("T") * Att("H")))
        edges = expr.edges()
        # M dominates everything
        for lower in "DWPTH":
            assert ("M", lower) in edges
        # D dominates W, and both D, W, P dominate T and H
        assert ("D", "W") in edges
        for upper in "DWP":
            for lower in "TH":
                assert (upper, lower) in edges
        # no priority between (D, P) and between (T, H)
        assert ("D", "P") not in edges and ("P", "D") not in edges
        assert ("T", "H") not in edges and ("H", "T") not in edges
        assert len(edges) == 5 + 1 + 6


class TestEqualityAndCanonical:
    def test_pareto_commutative_equality(self):
        assert pareto(Att("A"), Att("B")) == pareto(Att("B"), Att("A"))
        assert hash(pareto(Att("A"), Att("B"))) == \
            hash(pareto(Att("B"), Att("A")))

    def test_prioritized_is_ordered(self):
        assert prioritized(Att("A"), Att("B")) != \
            prioritized(Att("B"), Att("A"))

    def test_canonical_sorts_pareto_children(self):
        expr = pareto(Att("Z"), Att("A"), Att("M"))
        assert str(expr.canonical()) == "A * M * Z"

    def test_canonical_preserves_prioritized_order(self):
        expr = prioritized(Att("Z"), Att("A"))
        assert str(expr.canonical()) == "Z & A"

    def test_str_parenthesises_nested(self):
        expr = (Att("P") & Att("T")) * Att("M")
        assert str(expr) == "(P & T) * M"


class TestShortcuts:
    def test_sky(self):
        assert sky(["A"]) == Att("A")
        assert isinstance(sky(["A", "B"]), Pareto)

    def test_lex(self):
        assert lex(["A"]) == Att("A")
        expr = lex(["A", "B", "C"])
        assert isinstance(expr, Prioritized)
        assert expr.attributes() == ("A", "B", "C")
