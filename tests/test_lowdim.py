"""Tests for the Lemma 3 / Lemma 4 low-dimensional screening procedures.

Each routine is validated against a brute-force evaluation of
``exists b: b dominates w`` under the restricted semantics (including the
``prune_equal`` flag for dropped-attribute branches).
"""

import numpy as np
import pytest

from repro.algorithms.lowdim import (screen_1d, screen_lex, screen_pareto2,
                                     screen_pareto3, screen_small,
                                     _Staircase)
from repro.core.dominance import Dominance
from repro.core.parser import parse
from repro.core.pgraph import PGraph


def brute_force(b_block, w_block, graph, prune_equal):
    dominance = Dominance(graph)
    survivors = np.ones(w_block.shape[0], dtype=bool)
    for i, w in enumerate(w_block):
        for b in b_block:
            if dominance.dominates(b, w):
                survivors[i] = False
                break
            if prune_equal and dominance.indistinguishable(b, w):
                survivors[i] = False
                break
    return survivors


# every p-graph shape on <= 3 attributes, as p-expressions
THREE_ATTRIBUTE_SHAPES = [
    "A",                # d = 1
    "A * B",            # d = 2 skyline
    "A & B",            # d = 2 lexicographic
    "A * B * C",        # case 1: 3-d skyline
    "A & B & C",        # case 2: total order
    "A & (B * C)",      # case 3
    "(A * B) & C",      # case 4
    "(A & B) * C",      # case 5
]


@pytest.mark.parametrize("shape", THREE_ATTRIBUTE_SHAPES)
@pytest.mark.parametrize("prune_equal", [False, True])
@pytest.mark.parametrize("domain", [2, 3, 9])
def test_screen_small_matches_brute_force(shape, prune_equal, domain,
                                          rng, nrng):
    expr = parse(shape)
    graph = PGraph.from_expression(expr)
    d = graph.d
    for trial in range(10):
        b = rng.randint(1, 40)
        w = rng.randint(1, 40)
        b_block = nrng.integers(0, domain, size=(b, d)).astype(float)
        w_block = nrng.integers(0, domain, size=(w, d)).astype(float)
        expected = brute_force(b_block, w_block, graph, prune_equal)
        got = screen_small(b_block, w_block, graph, prune_equal)
        assert got.tolist() == expected.tolist(), (shape, trial)


@pytest.mark.parametrize("prune_equal", [False, True])
def test_screen_small_case_column_permutations(prune_equal, rng, nrng):
    """The dispatcher must relabel columns correctly for every
    permutation of the case-3/4/5 shapes."""
    for text in ["B & (A * C)", "(C * A) & B", "(C & A) * B",
                 "B & A & C", "C & (B * A)"]:
        expr = parse(text)
        names = sorted(expr.attributes())  # force column order A,B,C
        graph = PGraph.from_expression(expr, names=names)
        b_block = nrng.integers(0, 3, size=(25, 3)).astype(float)
        w_block = nrng.integers(0, 3, size=(25, 3)).astype(float)
        expected = brute_force(b_block, w_block, graph, prune_equal)
        got = screen_small(b_block, w_block, graph, prune_equal)
        assert got.tolist() == expected.tolist(), text


class TestPrimitives:
    def test_screen_1d(self):
        b = np.array([2.0, 3.0])
        w = np.array([1.0, 2.0, 3.0])
        assert screen_1d(b, w, False).tolist() == [True, True, False]
        assert screen_1d(b, w, True).tolist() == [True, False, False]

    def test_screen_lex(self):
        b = np.array([[1.0, 5.0], [1.0, 3.0]])
        w = np.array([[1.0, 3.0], [1.0, 4.0], [0.0, 9.0], [2.0, 0.0]])
        assert screen_lex(b, w, False).tolist() == [True, False, True, False]
        assert screen_lex(b, w, True).tolist() == [False, False, True, False]

    def test_screen_pareto2_strictness(self):
        b = np.array([[1.0, 1.0]])
        w = np.array([[1.0, 1.0], [1.0, 2.0], [2.0, 1.0], [0.0, 9.0]])
        assert screen_pareto2(b[:, 0], b[:, 1], w[:, 0], w[:, 1],
                              False).tolist() == [True, False, False, True]
        assert screen_pareto2(b[:, 0], b[:, 1], w[:, 0], w[:, 1],
                              True).tolist() == [False, False, False, True]

    def test_screen_pareto3_known(self):
        b = np.array([[1.0, 1.0, 1.0], [0.0, 2.0, 2.0]])
        w = np.array([
            [1.0, 1.0, 1.0],   # duplicate of b0: survives unless flagged
            [2.0, 1.0, 1.0],   # dominated by b0
            [0.0, 2.0, 3.0],   # dominated by b1
            [0.0, 1.0, 1.0],   # better than both on axis 0: survives
        ])
        assert screen_pareto3(b, w, False).tolist() == \
            [True, False, False, True]
        assert screen_pareto3(b, w, True).tolist() == \
            [False, False, False, True]

    def test_empty_b_all_survive(self):
        graph = PGraph.from_expression(parse("A * B * C"))
        w = np.ones((4, 3))
        assert screen_small(np.empty((0, 3)), w, graph, False).all()

    def test_too_many_attributes_rejected(self):
        graph = PGraph.from_expression(parse("A * B * C * D"))
        with pytest.raises(ValueError):
            screen_small(np.ones((1, 4)), np.ones((1, 4)), graph, False)


class TestStaircase:
    def test_insert_and_query(self):
        staircase = _Staircase()
        assert staircase.query(10.0) == np.inf
        staircase.insert(5.0, 5.0)
        staircase.insert(3.0, 7.0)
        staircase.insert(8.0, 2.0)
        assert staircase.query(2.0) == np.inf
        assert staircase.query(3.0) == 7.0
        assert staircase.query(5.0) == 5.0
        assert staircase.query(100.0) == 2.0

    def test_dominated_insert_ignored(self):
        staircase = _Staircase()
        staircase.insert(1.0, 1.0)
        staircase.insert(2.0, 2.0)  # dominated: no effect
        assert staircase.xs == [1.0]

    def test_insert_evicts_dominated_entries(self):
        staircase = _Staircase()
        staircase.insert(2.0, 5.0)
        staircase.insert(3.0, 4.0)
        staircase.insert(1.0, 1.0)  # dominates both
        assert staircase.xs == [1.0]
        assert staircase.ys == [1.0]

    def test_random_against_linear_scan(self, nrng):
        staircase = _Staircase()
        points = nrng.integers(0, 10, size=(60, 2)).astype(float)
        for x, y in points:
            staircase.insert(x, y)
        for q in np.linspace(-1, 11, 25):
            expected = min((y for x, y in points if x <= q),
                           default=np.inf)
            assert staircase.query(q) == expected
