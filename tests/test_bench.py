"""Tests for the benchmark harness, workloads, regression and reports."""

import numpy as np
import pytest

from repro.bench.harness import (RunRecord, geometric_buckets, group_records,
                                 run_pool, time_algorithm)
from repro.bench.regression import fit_polynomial
from repro.bench.report import format_series, format_table
from repro.bench.workloads import (QUICK, Scale, covertype_tasks,
                                   gaussian_tasks, nba_tasks, scaling_tasks)
from repro.core.expressions import sky
from repro.core.pgraph import PGraph

TINY = Scale(
    name="tiny",
    gaussian_rows=300, gaussian_columns=5, gaussian_dims=(3, 5),
    gaussian_expressions=2, correlation_targets=(-0.1, 0.5),
    nba_rows=300, nba_dims=(7, 10), nba_expressions=2,
    covertype_rows=300, covertype_dims=(5, 8), covertype_expressions=2,
    repeats=1,
)


class TestHarness:
    def test_time_algorithm_record(self, nrng):
        graph = PGraph.from_expression(sky(["A0", "A1"]),
                                       names=["A0", "A1"])
        ranks = nrng.random((200, 2))
        record = time_algorithm("osdc", ranks, graph, repeats=2,
                                metadata={"tag": "x"})
        assert record.algorithm == "osdc"
        assert record.seconds > 0
        assert record.input_size == 200
        assert record.output_size >= 1
        assert record.metadata["tag"] == "x"

    def test_run_pool_and_grouping(self, nrng):
        graph = PGraph.from_expression(sky(["A0", "A1"]),
                                       names=["A0", "A1"])
        tasks = [(nrng.random((100, 2)), graph, {"level": i % 2})
                 for i in range(4)]
        records = run_pool(["osdc", "bnl"], tasks)
        assert len(records) == 8
        grouped = group_records(records,
                                key=lambda r: r.metadata["level"])
        assert set(grouped) == {0, 1}
        assert set(grouped[0]) == {"osdc", "bnl"}

    def test_geometric_buckets(self):
        key = geometric_buckets([], base=4.0)
        record = RunRecord("x", 0.0, 10, 17, 2, 2)
        assert key(record) == 16.0
        record_small = RunRecord("x", 0.0, 10, 1, 2, 2)
        assert key(record_small) == 1.0


class TestWorkloads:
    def test_gaussian_tasks_metadata(self):
        tasks = gaussian_tasks(TINY)
        assert len(tasks) == 4  # 2 levels x 2 expressions
        for ranks, graph, metadata in tasks:
            assert ranks.shape[0] == 300
            assert ranks.shape[1] == graph.d
            assert "measured_correlation" in metadata
            assert graph.is_valid()

    def test_gaussian_correlation_levels_distinct(self):
        tasks = gaussian_tasks(TINY)
        measured = {round(t[2]["measured_correlation"], 1) for t in tasks}
        assert len(measured) == 2

    def test_nba_and_covertype_tasks(self):
        for builder in (nba_tasks, covertype_tasks):
            tasks = builder(TINY)
            assert len(tasks) == 2
            for ranks, graph, metadata in tasks:
                assert ranks.shape == (300, graph.d)
                assert len(metadata["attributes"]) == graph.d

    def test_deterministic_by_seed(self):
        first = gaussian_tasks(TINY, seed=5)
        second = gaussian_tasks(TINY, seed=5)
        assert all(np.array_equal(a[0], b[0])
                   for a, b in zip(first, second))
        assert all(a[1] == b[1] for a, b in zip(first, second))

    def test_scaling_tasks(self):
        tasks = scaling_tasks((100, 200), d=4)
        assert [t[0].shape[0] for t in tasks] == [100, 200]

    def test_quick_scale_is_small(self):
        assert QUICK.gaussian_rows <= 5000


class TestRegression:
    def test_exact_fit_of_polynomial(self):
        x = np.linspace(0, 10, 30)
        y = 2.0 + 3.0 * x + 0.5 * x ** 2
        fit = fit_polynomial(x, y)
        assert fit.coefficients == pytest.approx((2.0, 3.0, 0.5))
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict([2.0])[0] == pytest.approx(2 + 6 + 2)

    def test_fit_validations(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_polynomial([1, 2], [1, 2], degree=2)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["x", "time"], [[1, 2.5], [10, 33.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "33.25" in lines[-1]

    def test_format_series(self):
        grouped = {0.5: {"osdc": 0.001, "bnl": 0.002}}
        text = format_series("demo", grouped, ["osdc", "bnl", "less"], "rho")
        assert "== demo ==" in text
        assert "1.00" in text and "2.00" in text
        assert "-" in text  # missing algorithm rendered as dash
