"""Tests for semantic expression utilities (Proposition 2 based)."""

import pytest

from conftest import random_expression
from repro.core.parser import parse
from repro.core.semantics import equivalent, normal_form, refines, to_dot


class TestEquivalence:
    def test_pareto_commutativity(self):
        assert equivalent("A * B", "B * A")

    def test_prioritized_associativity(self):
        assert equivalent("(A & B) & C", "A & (B & C)")

    def test_pareto_of_prioritized_reordering(self):
        assert equivalent("(A & B) * (C & D)", "(C & D) * (A & B)")

    def test_known_inequivalences(self):
        assert not equivalent("A & B", "B & A")
        assert not equivalent("A & B", "A * B")
        assert not equivalent("A * B", "A * C")

    def test_different_attribute_sets(self):
        assert not equivalent("A", "A * B")

    def test_ast_inputs(self):
        assert equivalent(parse("A * B"), parse("B * A"))


class TestRefinement:
    def test_prioritized_refines_pareto(self):
        assert refines("A & B", "A * B")
        assert not refines("A * B", "A & B")

    def test_reflexive(self):
        assert refines("A & (B * C)", "A & (B * C)")

    def test_requires_same_attributes(self):
        with pytest.raises(ValueError):
            refines("A & B", "A * C")

    def test_partial_prioritization_chain(self):
        # sky  ⊂  one priority  ⊂  full lexicographic
        assert refines("(A & B) * C", "A * B * C")
        assert refines("A & B & C", "(A & B) * C")
        assert not refines("(A & B) * C", "A & B & C")


class TestNormalForm:
    def test_idempotent(self, rng):
        for _ in range(30):
            names = [f"A{i}" for i in range(rng.randint(1, 6))]
            expr = random_expression(names, rng)
            canonical = normal_form(expr)
            assert normal_form(canonical) == canonical

    def test_equivalent_expressions_share_normal_form(self):
        assert normal_form("B * A") == normal_form("A * B")
        assert normal_form("(A & B) & C") == normal_form("A & (B & C)")

    def test_distinct_preferences_distinct_forms(self):
        assert normal_form("A & B") != normal_form("B & A")

    def test_normal_form_is_equivalent_to_input(self, rng):
        for _ in range(30):
            names = [f"A{i}" for i in range(rng.randint(1, 6))]
            expr = random_expression(names, rng)
            assert equivalent(expr, normal_form(expr))


class TestDot:
    def test_renders_reduction_edges(self):
        dot = to_dot("M & ((D & W) * P) & (T * H)")
        assert dot.startswith("digraph pgraph {")
        assert dot.count("->") == 7  # Figure 1(b) has 7 reduction edges
        assert '"M"' in dot

    def test_edgeless_graph(self):
        dot = to_dot("A * B")
        assert "->" not in dot
        assert '"A"' in dot and '"B"' in dot
