"""Structural verification of the output-sensitivity claims (Theorem 1).

Wall-clock benchmarks live under ``benchmarks/``; here the claims are
checked on the *work counters*: on workloads with a tiny p-skyline, OSDC's
look-ahead must prune almost everything and its dominance-test count must
stay near-linear in ``n``, clearly below plain DC's.
"""

import numpy as np
import pytest

from repro.algorithms import Stats, dc, osdc, osdc_linear
from repro.core.parser import parse
from repro.core.pgraph import PGraph


def lexicographic_workload(n, d, nrng):
    """Continuous CI data under a pure lexicographic order: v is tiny."""
    ranks = nrng.random((n, d))
    names = [f"A{i}" for i in range(d)]
    graph = PGraph.from_expression(
        parse(" & ".join(names)), names=names)
    return ranks, graph


class TestLookAhead:
    def test_lookahead_prunes_on_small_output(self, nrng):
        ranks, graph = lexicographic_workload(4000, 5, nrng)
        stats = Stats()
        result = osdc(ranks, graph, stats=stats)
        assert result.size <= 4  # duplicates aside, a lex order has v ~ 1
        assert stats.pruned_by_lookahead > 3000

    def test_osdc_recursion_collapses_when_v_is_small(self, nrng):
        """OSDC's recursion depth is O(log v); DC's stays O(log n).

        On a lexicographic workload (v ~ 1) the look-ahead empties both
        halves immediately, so OSDC bottoms out after a couple of calls
        while DC still recurses through O(log n) levels.
        """
        ranks, graph = lexicographic_workload(8000, 5, nrng)
        osdc_stats, dc_stats = Stats(), Stats()
        assert osdc(ranks, graph, stats=osdc_stats, leaf_size=1).tolist() \
            == dc(ranks, graph, stats=dc_stats, leaf_size=1).tolist()
        assert osdc_stats.max_depth <= 3
        assert dc_stats.max_depth >= 8
        assert osdc_stats.recursive_calls * 4 < dc_stats.recursive_calls

    def test_osdc_work_scales_linearly_when_v_constant(self, nrng):
        """Doubling n should roughly double (not quadruple) the tests."""
        counts = []
        for n in (4000, 8000, 16000):
            ranks, graph = lexicographic_workload(n, 4, nrng)
            stats = Stats()
            osdc(ranks, graph, stats=stats)
            counts.append(stats.dominance_tests)
        growth1 = counts[1] / counts[0]
        growth2 = counts[2] / counts[1]
        assert growth1 < 3.0 and growth2 < 3.0


class TestRecursionDepth:
    def test_depth_tracks_output_size(self, nrng):
        # tiny output => shallow effective recursion
        ranks, graph = lexicographic_workload(8000, 4, nrng)
        stats = Stats()
        osdc(ranks, graph, stats=stats, leaf_size=1)
        shallow = stats.recursive_calls

        # skyline over anti-correlated-ish data => huge output, more calls
        names = [f"A{i}" for i in range(4)]
        sky_graph = PGraph.from_expression(parse(" * ".join(names)),
                                           names=names)
        base = nrng.random((8000, 1))
        anti = np.hstack([base, -base + nrng.normal(0, 0.01, (8000, 3))])
        stats_large = Stats()
        osdc(anti, sky_graph, stats=stats_large, leaf_size=1)
        assert stats_large.recursive_calls > 4 * shallow


class TestLinearAverageCase:
    def test_prescan_prunes_most_of_ci_input(self, nrng):
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(parse(" * ".join(names)),
                                       names=names)
        ranks = nrng.random((30_000, 4))
        stats = Stats()
        result = osdc_linear(ranks, graph, stats=stats)
        plain = osdc(ranks, graph)
        assert result.tolist() == plain.tolist()
        assert stats.pruned_by_filter > 0.5 * ranks.shape[0]

    def test_small_inputs_skip_prescan(self, nrng):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = nrng.random((10, 2))
        stats = Stats()
        osdc_linear(ranks, graph, stats=stats, min_size=64)
        assert stats.pruned_by_filter == 0

    def test_virtual_tuple_quantile(self, nrng):
        from repro.algorithms.linear_avg import virtual_tuple
        ranks = nrng.random((10_000, 3))
        pivot = virtual_tuple(ranks)
        # the default quantile is small: the pivot sits near the good corner
        assert (pivot < 0.35).all()
        with pytest.raises(ValueError):
            virtual_tuple(np.empty((0, 3)))
