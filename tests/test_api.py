"""API-surface hygiene: exports resolve, __all__ is consistent, public
callables are documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.algorithms",
    "repro.sampling",
    "repro.data",
    "repro.bench",
    "repro.storage",
    "repro.index",
    "repro.estimation",
    "repro.reference",
    "repro.elicitation",
    "repro.sql",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_exports(package):
    module = importlib.import_module(package)
    assert len(set(module.__all__)) == len(module.__all__)


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    module = importlib.import_module(package)
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{package}.{name} lacks a docstring"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_registry_names_are_kebab_case():
    from repro.algorithms import REGISTRY
    for name in REGISTRY:
        assert name == name.lower()
        assert " " not in name


def test_module_docstrings():
    for package in PACKAGES:
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"
