"""Tests for the dominance explanation helpers."""

import numpy as np
import pytest

from conftest import random_expression
from repro.core.dominance import Dominance
from repro.core.explain import explain_not_maximal, explain_pair
from repro.core.parser import parse
from repro.core.pgraph import PGraph


@pytest.fixture
def cars():
    # Example 1: P, M, T (manual=0 preferred)
    graph = PGraph.from_expression(parse("(P & T) * M"),
                                   names=["P", "M", "T"])
    ranks = np.array([
        [11500, 50000, 1],
        [11500, 60000, 0],
        [12000, 50000, 0],
        [12000, 60000, 1],
    ], dtype=float)
    return ranks, graph


class TestExplainPair:
    def test_domination_explained(self, cars):
        ranks, graph = cars
        explanation = explain_pair(ranks, graph, 0, 2)  # t1 beats t3
        assert explanation.outcome == ">"
        assert "dominates" in explanation.describe()
        assert set(explanation.topmost) <= {"P", "M"}
        assert explanation.uncovered == ()

    def test_reverse_direction(self, cars):
        ranks, graph = cars
        explanation = explain_pair(ranks, graph, 2, 0)
        assert explanation.outcome == "<"
        assert "second tuple dominates" in explanation.describe()

    def test_incomparable_names_blockers(self, cars):
        ranks, graph = cars
        explanation = explain_pair(ranks, graph, 0, 1)  # t1 ~ t2
        assert explanation.outcome == "~"
        assert explanation.uncovered  # something blocks each side
        assert "neither dominates" in explanation.describe()

    def test_indistinguishable(self):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = np.array([[1.0, 2.0], [1.0, 2.0]])
        explanation = explain_pair(ranks, graph, 0, 1)
        assert explanation.outcome == "="
        assert "indistinguishable" in explanation.describe()

    def test_consistent_with_dominance(self, rng, nrng):
        for _ in range(20):
            d = rng.randint(1, 5)
            names = [f"A{i}" for i in range(d)]
            graph = PGraph.from_expression(random_expression(names, rng),
                                           names=names)
            dominance = Dominance(graph)
            ranks = nrng.integers(0, 3, size=(10, d)).astype(float)
            for i in range(5):
                for j in range(5, 10):
                    explanation = explain_pair(ranks, graph, i, j)
                    assert explanation.outcome == \
                        dominance.compare(ranks[i], ranks[j])


class TestExplainNotMaximal:
    def test_witness_for_dominated_tuple(self, cars):
        ranks, graph = cars
        witness, explanation = explain_not_maximal(ranks, graph, 2)
        assert witness == 0  # t1 beats t3
        assert explanation.outcome == ">"

    def test_none_for_maximal_tuple(self, cars):
        ranks, graph = cars
        assert explain_not_maximal(ranks, graph, 0) is None
        assert explain_not_maximal(ranks, graph, 1) is None
