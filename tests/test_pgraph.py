"""Unit tests for p-graphs (Definition 2, Proposition 2, Theorem 4)."""

import pytest

from repro.core.bitsets import indices_of, mask_of
from repro.core.expressions import Att, pareto, prioritized
from repro.core.parser import parse
from repro.core.pgraph import CyclicPriorityError, PGraph


def graph_of(text: str) -> PGraph:
    return PGraph.from_expression(parse(text))


class TestConstruction:
    def test_skyline_graph_has_no_edges(self):
        graph = graph_of("A * B * C")
        assert graph.num_edges == 0
        assert graph.roots == 0b111

    def test_lex_graph_is_total_order(self):
        graph = graph_of("A & B & C")
        assert graph.edges() == {("A", "B"), ("A", "C"), ("B", "C")}
        assert graph.reduction_edges() == {("A", "B"), ("B", "C")}

    def test_paper_example2_reduction(self):
        # Figure 1(b): the transitive reduction of M & ((D&W)*P) & (T*H)
        graph = graph_of("M & ((D & W) * P) & (T * H)")
        assert graph.reduction_edges() == {
            ("M", "D"), ("M", "P"),
            ("D", "W"),
            ("W", "T"), ("W", "H"), ("P", "T"), ("P", "H"),
        }

    def test_paper_example2_depths(self):
        graph = graph_of("M & ((D & W) * P) & (T * H)")
        depth = dict(zip(graph.names, graph.depths))
        assert depth == {"M": 0, "D": 1, "P": 1, "W": 2, "T": 3, "H": 3}

    def test_from_edges_closes_transitively(self):
        graph = PGraph.from_edges("ABC", [("A", "B"), ("B", "C")])
        assert ("A", "C") in graph.edges()

    def test_from_edges_rejects_cycles(self):
        with pytest.raises(CyclicPriorityError):
            PGraph.from_edges("AB", [("A", "B"), ("B", "A")])
        with pytest.raises(CyclicPriorityError):
            PGraph.from_edges("ABC",
                              [("A", "B"), ("B", "C"), ("C", "A")])
        with pytest.raises(CyclicPriorityError):
            PGraph.from_edges("AB", [("A", "A")])

    def test_from_edges_rejects_unknown_attribute(self):
        with pytest.raises(ValueError, match="unknown attribute"):
            PGraph.from_edges("AB", [("A", "X")])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PGraph(["A", "A"], [0, 0])

    def test_non_transitive_closure_rejected(self):
        # A->B and B->C without A->C is not a valid closure
        with pytest.raises(ValueError):
            PGraph("ABC", [0b010, 0b100, 0])

    def test_custom_column_order(self):
        expr = parse("A & B")
        graph = PGraph.from_expression(expr, names=["B", "A"])
        assert graph.names == ("B", "A")
        assert graph.edges() == {("A", "B")}


class TestSetOperators:
    @pytest.fixture
    def example2(self):
        return graph_of("M & ((D & W) * P) & (T * H)")

    def names_at(self, graph, mask):
        return {graph.names[i] for i in indices_of(mask)}

    def test_descendants(self, example2):
        index = example2.names.index("D")
        assert self.names_at(example2, example2.descendants(index)) == \
            {"W", "T", "H"}

    def test_ancestors(self, example2):
        index = example2.names.index("T")
        assert self.names_at(example2, example2.ancestors(index)) == \
            {"M", "D", "W", "P"}

    def test_successors_are_reduction_level(self, example2):
        index = example2.names.index("M")
        assert self.names_at(example2, example2.successors(index)) == \
            {"D", "P"}

    def test_predecessors(self, example2):
        index = example2.names.index("T")
        assert self.names_at(example2, example2.predecessors(index)) == \
            {"W", "P"}

    def test_roots(self, example2):
        assert self.names_at(example2, example2.roots) == {"M"}
        assert example2.num_roots == 1

    def test_desc_of_set(self, example2):
        d = example2.names.index("D")
        p = example2.names.index("P")
        mask = mask_of([d, p])
        assert self.names_at(example2, example2.desc_of_set(mask)) == \
            {"W", "T", "H"}

    def test_topological_order(self, example2):
        order = example2.topological_order()
        position = {i: k for k, i in enumerate(order)}
        for i in range(example2.d):
            for j in indices_of(example2.closure[i]):
                assert position[i] < position[j]


class TestProposition2:
    def test_containment_tracks_edges(self):
        weaker = graph_of("A * B * C")
        stronger = PGraph.from_expression(parse("A & B & C"),
                                          names=["A", "B", "C"])
        assert stronger.contains(weaker)
        assert not weaker.contains(stronger)

    def test_equality_is_edge_equality(self):
        left = PGraph.from_expression(parse("(A & B) & C"),
                                      names=["A", "B", "C"])
        right = PGraph.from_expression(parse("A & (B & C)"),
                                       names=["A", "B", "C"])
        assert left == right

    def test_containment_requires_same_names(self):
        with pytest.raises(ValueError):
            graph_of("A * B").contains(graph_of("A * C"))


class TestTheorem4:
    def test_expression_graphs_satisfy_envelope(self, rng):
        from conftest import random_expression
        for _ in range(60):
            names = [f"A{i}" for i in range(rng.randint(1, 7))]
            graph = PGraph.from_expression(random_expression(names, rng),
                                           names=names)
            assert graph.satisfies_envelope()
            assert graph.is_valid()

    def test_n_poset_violates_envelope(self):
        # a < b, c < b, c < d: the canonical N, not a p-graph
        graph = PGraph.from_edges("abcd",
                                  [("a", "b"), ("c", "b"), ("c", "d")])
        assert not graph.satisfies_envelope()
        assert not graph.is_valid()

    def test_weak_order_detection(self):
        assert graph_of("A & B & C").is_weak_order()
        assert graph_of("A * B").is_weak_order()
        assert graph_of("(A * B) & C").is_weak_order()
        assert not graph_of("(A & B) * C").is_weak_order()
        assert not graph_of("M & ((D & W) * P) & (T * H)").is_weak_order()


class TestRestrict:
    def test_restrict_keeps_induced_edges(self):
        graph = graph_of("M & ((D & W) * P) & (T * H)")
        mask = mask_of([graph.names.index(n) for n in ("D", "W", "T")])
        sub = graph.restrict(mask)
        assert sub.names == ("D", "W", "T")
        assert sub.edges() == {("D", "W"), ("D", "T"), ("W", "T")}

    def test_restrict_to_single_attribute(self):
        graph = graph_of("A & B")
        sub = graph.restrict(0b10)
        assert sub.names == ("B",)
        assert sub.num_edges == 0


class TestWidthLimits:
    def test_width_cap_enforced(self):
        from repro.core.bitsets import MAX_ATTRIBUTES
        names = [f"A{i}" for i in range(MAX_ATTRIBUTES + 1)]
        with pytest.raises(ValueError, match="at most"):
            PGraph.empty(names)

    def test_wide_schema_works(self, nrng=None):
        import numpy as np
        from repro.algorithms import naive, osdc
        rng = np.random.default_rng(0)
        d = 30
        names = [f"A{i}" for i in range(d)]
        # thirty attributes: a prioritized pair chain
        text = " * ".join(f"(A{i} & A{i+1})" for i in range(0, d, 2))
        graph = PGraph.from_expression(parse(text), names=names)
        ranks = rng.integers(0, 3, size=(120, d)).astype(float)
        assert set(osdc(ranks, graph).tolist()) == \
            set(naive(ranks, graph).tolist())
