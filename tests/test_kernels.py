"""Cross-kernel property tests: native ≡ bitmask ≡ gemm ≡ scalar.

The four dominance kernel families (compiled native, packed-bitmask,
coverage GEMM, scalar reference) implement the same Proposition 1 test
and must agree bit-for-bit on every workload -- including
dimensionalities that cross the dense-table limit (d > 16, OR-reduction
path) and the bitmask width limit (d > 64 has no packed kernel at all).
Adversarial datasets stress tie handling: exact duplicates, all-equal
rows, coarse integer grids, anti-correlated fronts, constant columns,
negatives.  On hosts without numba a forced ``native`` degrades to the
bitmask fallback, so iterating ``KERNELS`` covers whichever of the two
paths this machine has (``tests/test_native_kernel.py`` pins both
explicitly).
"""

import random

import numpy as np
import pytest

from repro.algorithms.base import Stats
from repro.bench.perf_gate import compare, run_gate
from repro.core.dominance import (DENSE_TABLE_LIMIT, KERNELS, Dominance,
                                  current_forced_kernel, forced_kernel,
                                  select_kernel)
from repro.core.relation import Relation
from repro.core.attributes import lowest
from repro.engine import ExecutionContext
from repro.sampling.random_pexpr import PExpressionSampler


def sample_graph(d: int, seed: int = 0):
    rng = random.Random(f"kernels:{d}:{seed}")
    sampler = PExpressionSampler([f"A{i}" for i in range(d)],
                                 method="counting")
    return sampler.sample_graph(rng)


def adversarial_datasets(d: int, rng: np.random.Generator):
    """Datasets chosen to stress tie handling and mask packing."""
    n = 40
    yield "gaussian", rng.normal(size=(n, d)).round(2)
    yield "all-equal", np.zeros((n, d))
    base = rng.integers(0, 3, size=(n, d)).astype(float)
    yield "integer-grid", base
    yield "duplicates", np.vstack([base[: n // 2], base[: n // 2]])
    anti = rng.normal(size=(n, d))
    anti[:, 0] = -anti[:, 1:].sum(axis=1)
    yield "anti-correlated", anti.round(2)
    constant = rng.normal(size=(n, d)).round(2)
    constant[:, d // 2] = 7.0
    yield "constant-column", constant
    yield "negatives", -np.abs(rng.normal(size=(n, d))).round(2)


@pytest.mark.parametrize("d", [2, 3, 8, 16, 17, 20])
def test_kernels_agree_on_adversarial_data(d):
    graph = sample_graph(d)
    dominance = Dominance(graph).prepare()
    rng = np.random.default_rng(d)
    for name, ranks in adversarial_datasets(d, rng):
        half = ranks.shape[0] // 2
        block, against = ranks[:half], ranks[half:]
        reference = None
        for kernel in KERNELS:
            screened = dominance.screen_block(block, against,
                                              kernel=kernel)
            dominators = dominance.dominators_mask(against, block[0],
                                                   kernel=kernel)
            dominated = dominance.dominated_mask(against, block[0],
                                                 kernel=kernel)
            got = (screened.copy(), dominators.copy(), dominated.copy())
            if reference is None:
                reference = got
                continue
            for label, a, b in zip(("screen", "dominators", "dominated"),
                                   reference, got):
                assert np.array_equal(a, b), \
                    f"{kernel} disagrees on {label} for {name} at d={d}"


def test_kernels_agree_self_screen_with_duplicates():
    graph = sample_graph(6)
    dominance = Dominance(graph).prepare()
    rng = np.random.default_rng(6)
    ranks = rng.integers(0, 2, size=(30, 6)).astype(float)
    ranks = np.vstack([ranks, ranks[:10]])  # exact duplicates survive
    masks = [dominance.screen_block(ranks, ranks, kernel=kernel).copy()
             for kernel in KERNELS]
    for kernel, mask in zip(KERNELS[1:], masks[1:]):
        assert np.array_equal(masks[0], mask), kernel


def test_bitmask_beyond_width_limit_rejected():
    # p-graphs cap at 64 attributes, which is also the widest packable
    # mask; the policy layer still guards the boundary explicitly
    assert select_kernel(None, d=65) == "gemm"
    with pytest.raises(ValueError, match="bitmask"):
        select_kernel("bitmask", d=65)
    with pytest.raises(ValueError, match="native"):
        select_kernel("native", d=65)
    # at the limit itself the packed kernel works and agrees with scalar
    graph = sample_graph(64)
    dominance = Dominance(graph).prepare()
    ranks = np.random.default_rng(0).normal(size=(16, 64)).round(1)
    packed = dominance.screen_block(ranks, ranks, kernel="bitmask").copy()
    scalar = dominance.screen_block(ranks, ranks, kernel="scalar")
    assert np.array_equal(packed, scalar)


def test_select_kernel_policy():
    from repro.core.dominance import (BITMASK_WIDTH_LIMIT,
                                      native_available)
    # auto prefers the compiled backend when importable, the packed
    # interpreter kernel otherwise
    packed = "native" if native_available() else "bitmask"
    assert select_kernel(None, d=6, pairs=1 << 20) == packed
    assert select_kernel(None, d=6, pairs=8) == "gemm"  # small block
    assert select_kernel(None, d=70) == "gemm"  # beyond the width limit
    assert select_kernel("scalar", d=6) == "scalar"
    # boundary: the packed families serve exactly up to the width limit
    assert select_kernel(None, d=BITMASK_WIDTH_LIMIT,
                         pairs=1 << 20) == packed
    assert select_kernel(None, d=BITMASK_WIDTH_LIMIT + 1,
                         pairs=1 << 20) == "gemm"
    # the dense-table limit does not change the family, only how the
    # descendant union is materialised inside it
    assert select_kernel(None, d=DENSE_TABLE_LIMIT,
                         pairs=1 << 20) == packed
    assert select_kernel(None, d=DENSE_TABLE_LIMIT + 1,
                         pairs=1 << 20) == packed
    with pytest.raises(ValueError):
        select_kernel("fancy", d=6)


def test_forced_kernel_wins_over_everything():
    assert current_forced_kernel() is None
    with forced_kernel("scalar"):
        assert current_forced_kernel() == "scalar"
        assert select_kernel("bitmask", d=6, pairs=1 << 20) == "scalar"
        with forced_kernel("gemm"):  # nesting restores the outer force
            assert select_kernel(None, d=6) == "gemm"
        assert current_forced_kernel() == "scalar"
    assert current_forced_kernel() is None


def test_forced_kernel_rejects_unknown_names():
    with pytest.raises(ValueError):
        with forced_kernel("auto"):
            pass


def test_screen_block_chunked_early_exit_still_checks():
    """Chunking keeps the early exit AND the cancellation callback."""
    graph = sample_graph(4)
    dominance = Dominance(graph)
    rng = np.random.default_rng(4)
    # one dominating row first, then strictly worse rows: every later
    # chunk is fully dominated, so the inner loop exits early
    best = np.zeros((1, 4))
    worse = np.abs(rng.normal(size=(2000, 4))) + 1.0
    ranks = np.vstack([best, worse])
    calls = []
    mask = dominance.screen_block(ranks, ranks, chunk=64,
                                  check=lambda phase: calls.append(phase))
    assert mask[0] and not mask[1:].any()
    # the callback fires between outer chunks even when inner loops
    # early-exit -- one call per outer chunk at minimum
    assert len(calls) >= (ranks.shape[0] + 63) // 64
    assert set(calls) == {"screen-block"}


def test_stats_and_trace_record_selected_kernel():
    from repro.algorithms import get_algorithm
    graph = sample_graph(5)
    ranks = np.random.default_rng(5).normal(size=(200, 5))
    for name in ("bnl", "sfs", "less", "salsa", "osdc", "naive"):
        stats = Stats()
        context = ExecutionContext.create(stats=stats, trace=16)
        get_algorithm(name)(ranks, graph, context=context)
        assert stats.extra["kernel"] in KERNELS, name
        events = [event for event in context.trace.events()
                  if event.phase == "kernel-select"]
        assert events and \
            events[0].counters["kernel"] == stats.extra["kernel"], name


def test_algorithms_agree_under_each_forced_kernel():
    from repro.algorithms import get_algorithm
    graph = sample_graph(5, seed=1)
    ranks = np.random.default_rng(15).integers(
        0, 4, size=(120, 5)).astype(float)
    for name in ("bnl", "sfs", "less", "salsa", "osdc", "dc", "naive"):
        function = get_algorithm(name)
        results = []
        for kernel in KERNELS:
            with forced_kernel(kernel):
                results.append(sorted(int(i)
                                      for i in function(ranks, graph)))
        for kernel, result in zip(KERNELS[1:], results[1:]):
            assert results[0] == result, (name, kernel)


def test_incremental_maintainer_accepts_kernel():
    from repro.algorithms.incremental import PSkylineMaintainer
    graph = sample_graph(4, seed=2)
    rng = np.random.default_rng(42)
    rows = rng.normal(size=(60, 4)).round(2)
    maintainers = {kernel: PSkylineMaintainer(graph, kernel=kernel)
                   for kernel in KERNELS}
    for row in rows:
        for maintainer in maintainers.values():
            maintainer.insert(row)
    skylines = [np.sort(m.skyline_ranks(), axis=0)
                for m in maintainers.values()]
    for kernel, skyline in zip(KERNELS[1:], skylines[1:]):
        assert np.array_equal(skylines[0], skyline), kernel


def test_relation_ranks_are_c_contiguous():
    records = [{"a": float(i), "b": float(-i)} for i in range(10)]
    relation = Relation.from_records(records, [lowest("a"), lowest("b")])
    assert relation.ranks.flags["C_CONTIGUOUS"]
    taken = relation.take(np.asarray([3, 1, 2]))
    assert taken.ranks.flags["C_CONTIGUOUS"]


def test_dense_table_limit_crossing():
    """d=16 builds the 2^16 table; d=17 falls back to OR-reduction."""
    dense = Dominance(sample_graph(DENSE_TABLE_LIMIT)).prepare()
    assert dense._table is not None
    assert dense._table.size == 1 << DENSE_TABLE_LIMIT
    assert not dense._table.flags.writeable
    wide = Dominance(sample_graph(DENSE_TABLE_LIMIT + 1)).prepare()
    assert wide._table is None


def test_perf_gate_quick_run_and_compare():
    artifact = run_gate(quick=True)
    names = {record["name"] for record in artifact["kernels"]}
    assert {"screen-d4", "screen-d8", "screen-d16",
            "scalar-parity-d4"} <= names
    for record in artifact["algorithms"]:
        assert record["kernel"] in KERNELS
    # self-comparison passes with a permissive speedup floor (quick
    # workloads are small; the 2x gate applies to the full run)
    assert compare(artifact, artifact, min_speedup=0.0) == []
    # a counter regression is caught
    broken = {
        "schema": artifact["schema"],
        "kernels": [dict(record) for record in artifact["kernels"]],
        "algorithms": [dict(record) for record in artifact["algorithms"]],
    }
    broken["algorithms"][0]["output_size"] += 1
    violations = compare(broken, artifact, min_speedup=0.0)
    assert any("output size" in violation for violation in violations)
    # a speedup collapse is caught within-run, without any baseline
    slow = dict(artifact["kernels"][0])
    slow["speedup_bitmask_over_gemm"] = 1.01
    violations = compare({"kernels": [slow], "algorithms": []}, None,
                         min_speedup=2.0)
    assert any("below" in violation for violation in violations)


def test_cli_bench_kernels_smoke(capsys):
    from repro.cli import main
    assert main(["bench-kernels", "--rows", "300", "--dims", "3",
                 "--scalar"]) == 0
    out = capsys.readouterr().out
    assert "bitmask" in out and "gemm" in out and "scalar" in out
