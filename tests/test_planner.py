"""Tests for the cost-based planner and ``algorithm='auto'``."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import naive
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.core.query import p_skyline
from repro.planner import Plan, Planner


class TestRules:
    def test_tiny_inputs_go_naive(self, nrng):
        planner = Planner()
        graph = PGraph.from_expression(parse("(A & B) * C"))
        plan = planner.plan(nrng.random((50, 3)), graph)
        assert plan.algorithm == "naive"

    def test_weak_order_goes_layered(self, nrng):
        planner = Planner()
        graph = PGraph.from_expression(parse("A & (B * C)"))
        plan = planner.plan(nrng.random((5000, 3)), graph)
        assert plan.algorithm == "layered"

    def test_selective_query_goes_bnl(self, nrng):
        planner = Planner()
        # not a weak order, but still a nearly-singleton output
        graph = PGraph.from_expression(parse("(A & B & C) * D"))
        ranks = nrng.random((5000, 4))
        ranks[:, 3] = 0.0  # constant: the lexicographic part decides
        plan = planner.plan(ranks, graph)
        assert plan.algorithm == "bnl"
        assert plan.estimated_output is not None

    def test_general_case_goes_osdc(self, nrng):
        planner = Planner()
        graph = PGraph.from_expression(parse("(A & B) * C * D * E"))
        plan = planner.plan(nrng.random((5000, 5)), graph)
        assert plan.algorithm == "osdc"

    def test_memory_budget_goes_external(self, nrng):
        planner = Planner(memory_budget=1000)
        graph = PGraph.from_expression(parse("(A & B) * C"))
        plan = planner.plan(nrng.random((5000, 3)), graph)
        assert plan.algorithm == "external-osdc"
        assert plan.options["memory_budget"] == 1000

    def test_explain_mentions_reason(self, nrng):
        planner = Planner()
        graph = PGraph.from_expression(parse("A & B"))
        plan = planner.plan(nrng.random((5000, 2)), graph)
        assert "weak order" in plan.explain()


class TestExecution:
    @pytest.mark.parametrize("seed", range(6))
    def test_execute_matches_oracle(self, seed, rng, nrng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        planner = Planner(rng=np.random.default_rng(seed))
        d = rng.randint(1, 6)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, rng.choice([3, 50]),
                              size=(rng.randint(1, 400), d)).astype(float)
        expected = set(naive(ranks, graph).tolist())
        got = set(planner.execute(ranks, graph).tolist())
        assert got == expected

    def test_external_plan_executes(self, nrng):
        planner = Planner(memory_budget=500)
        graph = PGraph.from_expression(parse("(A & B) * C"))
        ranks = nrng.integers(0, 20, size=(2000, 3)).astype(float)
        expected = set(naive(ranks, graph).tolist())
        assert set(planner.execute(ranks, graph).tolist()) == expected

    def test_plan_dataclass(self):
        plan = Plan("osdc", "why", estimated_output=12.0)
        assert "osdc" in plan.explain() and "12" in plan.explain()


class TestAutoQuery:
    def test_auto_on_relation(self):
        from repro import Relation, lowest
        relation = Relation.from_records(
            [{"a": i % 5, "b": (i * 7) % 11} for i in range(300)],
            [lowest("a"), lowest("b")],
        )
        auto = p_skyline(relation, "a * b", algorithm="auto")
        explicit = p_skyline(relation, "a * b", algorithm="osdc")
        key = lambda r: (r["a"], r["b"])  # noqa: E731
        assert sorted(map(key, auto.to_records())) == \
            sorted(map(key, explicit.to_records()))

    def test_auto_on_matrix(self, nrng):
        ranks = nrng.random((3000, 3))
        auto = p_skyline(ranks, "A0 & (A1 * A2)", algorithm="auto")
        explicit = p_skyline(ranks, "A0 & (A1 * A2)", algorithm="osdc")
        assert auto.tolist() == explicit.tolist()


class TestPlanRecording:
    def test_execute_records_plan_in_stats_extra(self, nrng):
        from repro.algorithms import Stats
        planner = Planner()
        graph = PGraph.from_expression(parse("(A & B) * C"))
        stats = Stats()
        planner.execute(nrng.random((50, 3)), graph, stats=stats)
        plan = stats.extra["plan"]
        assert plan["algorithm"] == "naive"
        assert "50 tuples" in plan["reason"]
        assert plan["estimated_output"] is None

    def test_recorded_estimate_for_general_case(self, nrng):
        from repro.algorithms import Stats
        planner = Planner()
        graph = PGraph.from_expression(parse("(A & B) * C * D * E"))
        stats = Stats()
        planner.execute(nrng.random((5000, 5)), graph, stats=stats)
        plan = stats.extra["plan"]
        assert plan["algorithm"] in ("bnl", "osdc")
        assert plan["estimated_output"] is not None

    def test_plan_lands_in_trace(self, nrng):
        from repro.engine import ExecutionContext
        planner = Planner()
        graph = PGraph.from_expression(parse("(A & B) * C"))
        context = ExecutionContext.create(trace=True)
        planner.execute(nrng.random((50, 3)), graph, context=context)
        plans = [event for event in context.trace.events()
                 if event.phase == "plan"]
        assert len(plans) == 1
        assert plans[0].counters["chosen"] == "naive"

    def test_auto_query_records_plan(self, nrng):
        from repro.algorithms import Stats
        stats = Stats()
        p_skyline(nrng.random((2000, 3)), "A0 & (A1 * A2)",
                  algorithm="auto", stats=stats)
        assert stats.extra["plan"]["algorithm"] == "layered"
