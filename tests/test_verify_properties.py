"""Property test: cold vs warm preference cache and every registered
algorithm agree on 200 seeded (p-expression, dataset) pairs.

Datasets are equicorrelated Gaussians over d ∈ {2, 3, 5} at target
correlations α ∈ {-0.4, 0, 0.8} (clamped into the feasible range for
each d, as the bench workloads do); p-graphs are drawn from the
exactly-uniform sampler.  The warm context reuses one
:class:`PreferenceCache` across all 200 pairs, so later cases hit
compiled preferences built by earlier ones -- any direction/order keying
bug or stale-cache corruption shows up as a cold/warm disagreement.
"""

import random

import numpy as np
import pytest

from repro.algorithms import REGISTRY, naive
from repro.engine import ExecutionContext, PreferenceCache
from repro.sampling.exact_counting import ExactUniformSampler
from repro.verify.datasets import correlated_gaussian

CASES = 200
DIMENSIONS = (2, 3, 5)
ALPHAS = (-0.4, 0.0, 0.8)
ROWS = 48

OTHERS = sorted(set(REGISTRY) - {"naive", "osdc"})


def _pairs():
    rng = random.Random(20150531)
    samplers = {d: ExactUniformSampler([f"A{i}" for i in range(d)])
                for d in DIMENSIONS}
    for case in range(CASES):
        d = DIMENSIONS[case % len(DIMENSIONS)]
        alpha = ALPHAS[(case // len(DIMENSIONS)) % len(ALPHAS)]
        nrng = np.random.default_rng(1_000_000 + case)
        ranks, _ = correlated_gaussian(ROWS, d, alpha, nrng,
                                       round_decimals=1)
        graph = samplers[d].sample_graph(rng)
        yield case, alpha, ranks, graph


def test_cold_vs_warm_cache_and_all_algorithms_agree():
    warm_cache = PreferenceCache()
    covered_alphas = set()
    covered_dims = set()
    for case, alpha, ranks, graph in _pairs():
        covered_alphas.add(alpha)
        covered_dims.add(graph.d)
        expected = set(naive(ranks, graph).tolist())

        cold = REGISTRY["osdc"](
            ranks, graph,
            context=ExecutionContext(cache=PreferenceCache()))
        warm = REGISTRY["osdc"](
            ranks, graph, context=ExecutionContext(cache=warm_cache))
        assert set(cold.tolist()) == expected, (case, alpha, "cold")
        assert set(warm.tolist()) == expected, (case, alpha, "warm")

        # every other registered algorithm agrees on the same pair
        for name in OTHERS:
            got = REGISTRY[name](ranks, graph)
            assert set(got.tolist()) == expected, (case, alpha, name)

    assert covered_alphas == set(ALPHAS)
    assert covered_dims == set(DIMENSIONS)
    # the warm cache genuinely got reused across cases
    stats = warm_cache.stats()
    assert stats["hits"] > 0
    assert stats["misses"] <= CASES


@pytest.mark.parametrize("d", DIMENSIONS)
@pytest.mark.parametrize("alpha", ALPHAS)
def test_targets_clamped_into_feasible_range(d, alpha):
    nrng = np.random.default_rng(0)
    ranks, achieved = correlated_gaussian(32, d, alpha, nrng)
    assert ranks.shape == (32, d)
    assert achieved > -1.0 / (d - 1)
    if alpha >= 0:
        assert achieved == alpha
