"""Tests for partition-parallel evaluation and sliding-window queries."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import naive, SlidingWindowPSkyline
from repro.algorithms.base import Stats
from repro.algorithms.parallel import parallel_osdc
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.engine import (CancellationToken, ExecutionContext,
                          QueryCancelled, TraceBuffer)


class TestParallelOSDC:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_oracle_with_workers(self, seed, rng, nrng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(1, 5)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 10, size=(3000, d)).astype(float)
        expected = set(naive(ranks, graph).tolist())
        got = set(parallel_osdc(ranks, graph, processes=3,
                                min_chunk=100).tolist())
        assert got == expected

    def test_serial_fallback_for_small_inputs(self, nrng):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = nrng.random((100, 2))
        stats = Stats()
        result = parallel_osdc(ranks, graph, stats=stats, processes=4,
                               min_chunk=4096)
        assert "chunk_skylines" not in stats.extra  # no fan-out happened
        assert set(result.tolist()) == set(naive(ranks, graph).tolist())

    def test_chunk_stats_recorded(self, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 50, size=(2000, 2)).astype(float)
        stats = Stats()
        parallel_osdc(ranks, graph, stats=stats, processes=2,
                      min_chunk=100)
        assert len(stats.extra["chunk_skylines"]) == 2

    def test_invalid_processes(self, nrng):
        graph = PGraph.from_expression(parse("A"))
        with pytest.raises(ValueError):
            parallel_osdc(nrng.random((10, 1)), graph, processes=0)

    def test_invalid_min_chunk(self, nrng):
        graph = PGraph.from_expression(parse("A"))
        with pytest.raises(ValueError):
            parallel_osdc(nrng.random((10, 1)), graph, min_chunk=0)

    def test_validation_fires_before_side_effects(self):
        """Bad knobs must raise before check_input/ensure_context get a
        chance to touch the (deliberately invalid) inputs."""
        with pytest.raises(ValueError, match="processes"):
            parallel_osdc("not a matrix", object(), processes=0)
        with pytest.raises(ValueError, match="min_chunk"):
            parallel_osdc("not a matrix", object(), min_chunk=0)

    def test_auto_processes_policy(self):
        import os
        from repro.algorithms.parallel import auto_processes
        cpus = os.cpu_count() or 1
        assert auto_processes(0, 4096) == 1
        assert auto_processes(10_000_000, 4096) == \
            min(cpus, 10_000_000 // 4096)
        assert auto_processes(100, 4096) == 1

    def test_registered(self):
        from repro.algorithms import REGISTRY
        assert "parallel-osdc" in REGISTRY


class TestParallelInterruptionPolicy:
    """Deadline and cancellation queries now run *on* the parallel
    path: the pool ships the absolute monotonic deadline to workers and
    mirrors the cancellation token into a shared event, so exactly the
    queries a loaded service runs keep their speed-up."""

    def _workload(self, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 50, size=(2000, 2)).astype(float)
        return ranks, graph

    def test_plain_context_takes_the_parallel_path(self, nrng):
        ranks, graph = self._workload(nrng)
        stats = Stats()
        context = ExecutionContext(stats=stats, trace=TraceBuffer(),
                                   memory_budget=10_000)
        result = parallel_osdc(ranks, graph, context=context,
                               processes=2, min_chunk=100)
        assert len(stats.extra["chunk_skylines"]) == 2  # fan-out happened
        assert set(result.tolist()) == set(naive(ranks, graph).tolist())

    def test_fabricated_context_takes_the_parallel_path(self, nrng):
        ranks, graph = self._workload(nrng)
        stats = Stats()
        parallel_osdc(ranks, graph, stats=stats, processes=2,
                      min_chunk=100)
        assert "chunk_skylines" in stats.extra

    def test_deadline_takes_the_parallel_path(self, nrng):
        ranks, graph = self._workload(nrng)
        stats = Stats()
        context = ExecutionContext.create(stats=stats, timeout=60.0)
        result = parallel_osdc(ranks, graph, context=context,
                               processes=2, min_chunk=100)
        assert len(stats.extra["chunk_skylines"]) == 2
        assert set(result.tolist()) == set(naive(ranks, graph).tolist())

    def test_untriggered_cancel_token_takes_the_parallel_path(self, nrng):
        ranks, graph = self._workload(nrng)
        stats = Stats()
        context = ExecutionContext(stats=stats, cancel=CancellationToken())
        result = parallel_osdc(ranks, graph, context=context,
                               processes=2, min_chunk=100)
        assert len(stats.extra["chunk_skylines"]) == 2
        assert set(result.tolist()) == set(naive(ranks, graph).tolist())

    def test_pre_triggered_token_raises_before_dispatch(self, nrng):
        ranks, graph = self._workload(nrng)
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            parallel_osdc(ranks, graph,
                          context=ExecutionContext(cancel=token),
                          processes=2, min_chunk=100)


class TestSlidingWindow:
    def test_answer_tracks_the_window(self):
        graph = PGraph.from_expression(parse("A & B"))
        stream = SlidingWindowPSkyline(graph, window=3)
        stream.append([3.0, 0.0])   # id 0
        stream.append([2.0, 0.0])   # id 1
        stream.append([1.0, 0.0])   # id 2: dominates both
        assert stream.skyline_ids().tolist() == [2]
        stream.append([9.0, 9.0])   # id 3 evicts id 0; id 2 still rules
        assert stream.skyline_ids().tolist() == [2]
        stream.append([9.0, 8.0])   # evicts id 1
        stream.append([9.0, 7.0])   # evicts id 2: the throne is vacant
        assert stream.skyline_ids().tolist() == [5]
        assert len(stream) == 3

    @pytest.mark.parametrize("seed", range(4))
    def test_random_stream_matches_recomputation(self, seed, rng, nrng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(1, 4)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        window = rng.randint(1, 12)
        stream = SlidingWindowPSkyline(graph, window=window)
        history = []
        for step in range(80):
            values = nrng.integers(0, 4, size=d).astype(float)
            history.append(values)
            stream.append(values)
            recent = np.array(history[-window:])
            expected_local = set(naive(recent, graph).tolist())
            offset = len(history) - recent.shape[0]
            expected = {local + offset for local in expected_local}
            assert set(stream.skyline_ids().tolist()) == expected, step

    def test_window_validation(self):
        graph = PGraph.from_expression(parse("A"))
        with pytest.raises(ValueError):
            SlidingWindowPSkyline(graph, window=0)

    def test_contents_order(self):
        graph = PGraph.from_expression(parse("A"))
        stream = SlidingWindowPSkyline(graph, window=2)
        stream.append([1.0])
        stream.append([2.0])
        stream.append([3.0])
        assert stream.contents()[:, 0].tolist() == [2.0, 3.0]
