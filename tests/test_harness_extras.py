"""Tests for harness extras: CSV export, option sweeps, CLI shell."""

import csv

import numpy as np
import pytest

from repro.bench.harness import (LESS_FILTER_SWEEP, records_to_csv,
                                 run_pool, time_algorithm)
from repro.core.expressions import sky
from repro.core.pgraph import PGraph


@pytest.fixture
def small_task(nrng):
    names = ["A0", "A1"]
    graph = PGraph.from_expression(sky(names), names=names)
    return nrng.random((300, 2)), graph


class TestRecordsCsv:
    def test_export_round_trip(self, small_task, tmp_path):
        ranks, graph = small_task
        records = run_pool(["osdc", "bnl"], [(ranks, graph, {"x": 1})])
        path = tmp_path / "records.csv"
        records_to_csv(records, str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"osdc", "bnl"}
        assert all(float(row["seconds"]) > 0 for row in rows)
        assert all(int(row["input_size"]) == 300 for row in rows)


class TestSweep:
    def test_sweep_keeps_fastest(self, small_task):
        ranks, graph = small_task
        record = time_algorithm(
            "less", ranks, graph,
            sweep=[{"filter_size": 50}, {"filter_size": 5000}],
        )
        fixed_small = time_algorithm("less", ranks, graph, filter_size=50)
        fixed_large = time_algorithm("less", ranks, graph,
                                     filter_size=5000)
        assert record.seconds <= max(fixed_small.seconds,
                                     fixed_large.seconds) * 1.5

    def test_default_less_sweep_applied_in_pool(self, small_task):
        ranks, graph = small_task
        records = run_pool(["less"], [(ranks, graph, {})])
        assert len(records) == 1  # one record despite the sweep

    def test_sweep_constant_is_paper_range(self):
        sizes = [options["filter_size"] for options in LESS_FILTER_SWEEP]
        assert min(sizes) >= 50 and max(sizes) <= 10_000


class TestCliShell:
    def test_shell_executes_statements(self, tmp_path, capsys,
                                       monkeypatch):
        from repro.cli import main
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,5\n2,4\n3,3\n")
        lines = iter([
            "SELECT a FROM t WHERE a >= 2 PREFERRING lowest(a)",
            "SELECT broken FROM t",     # error must not kill the shell
            "",
        ])
        monkeypatch.setattr("builtins.input", lambda *_: next(lines))
        code = main(["shell", "--load", f"t={path}"])
        assert code == 0
        captured = capsys.readouterr()
        assert "(1 rows)" in captured.out
        assert "error:" in captured.err

    def test_shell_bad_load_spec(self, capsys):
        from repro.cli import main
        assert main(["shell", "--load", "nopath"]) == 1
        assert "NAME=PATH" in capsys.readouterr().err
