"""Tests for the DC invocation-trace utility (paper Example 3)."""

from repro.core.parser import parse
from repro.reference import format_trace, trace_dc

CARS = [
    {"P": 11500, "M": 50000, "T": 1},
    {"P": 11500, "M": 60000, "T": 0},
    {"P": 12000, "M": 50000, "T": 0},
    {"P": 12000, "M": 60000, "T": 1},
]


def test_example3_answer():
    root = trace_dc(parse("(P & T) * M"), CARS)
    keys = {(t["P"], t["M"], t["T"]) for t in root.result}
    assert keys == {(11500, 50000, 1), (11500, 60000, 0)}


def test_trace_structure_records_actions():
    root = trace_dc(parse("(P & T) * M"), CARS)
    assert "split on" in root.action
    assert "p-screening" in root.action
    assert len(root.children) == 2


def test_promotion_branch_traced():
    tuples = [{"A": 1.0, "B": float(i)} for i in range(4)]
    root = trace_dc(parse("A & B"), tuples)
    assert "move it to E" in root.action
    assert len(root.result) == 1


def test_lookahead_traced():
    root = trace_dc(parse("(P & T) * M"), CARS, lookahead=True)
    assert "look-ahead" in root.action
    keys = {(t["P"], t["M"], t["T"]) for t in root.result}
    assert keys == {(11500, 50000, 1), (11500, 60000, 0)}


def test_format_trace_with_labels():
    labels_cars = [dict(c) for c in CARS]
    labels = {id(c): f"t{i+1}" for i, c in enumerate(labels_cars)}
    text = format_trace(trace_dc(parse("(P & T) * M"), labels_cars),
                        labels)
    assert "t1" in text and "DCREC" in text and "returns" in text


def test_format_trace_without_labels():
    text = format_trace(trace_dc(parse("A * B"),
                                 [{"A": 1.0, "B": 2.0}]))
    assert "A=1" in text
