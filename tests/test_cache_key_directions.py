"""The compiled-preference cache must key on attribute *orders*, not
just p-graph structure.

Two p-graphs that are isomorphic (same names, same priority closure)
but differently directed -- ``lowest(price)`` vs ``highest(price)``, or
different custom rankings -- denote different preferences.  Before the
fix they collided on the structural key ``(names, closure)`` and shared
one cache entry; these tests pin the corrected behaviour end to end.
"""

import numpy as np

from repro.core.attributes import highest, lowest, orders_signature, ranked
from repro.core.pgraph import PGraph
from repro.core.preferring import evaluate_preferring
from repro.core.query import p_skyline
from repro.core.relation import Relation
from repro.core.serialize import pgraph_from_json, pgraph_to_json
from repro.engine import ExecutionContext, PreferenceCache
from repro.engine.compiled import graph_key


def _chain_graph(orders=None):
    # price -> mileage: identical structure in every test
    return PGraph(("price", "mileage"), (0b10, 0b00), orders)


class TestGraphKey:
    def test_isomorphic_but_differently_directed_graphs_do_not_collide(self):
        cache = PreferenceCache()
        min_min = cache.get(_chain_graph(("min", "min")))
        max_min = cache.get(_chain_graph(("max", "min")))
        assert min_min is not max_min
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2
        # same signature again: a genuine hit
        assert cache.get(_chain_graph(("max", "min"))) is max_min
        assert cache.stats()["hits"] == 1

    def test_custom_total_orders_are_part_of_the_key(self):
        cache = PreferenceCache()
        gold_first = _chain_graph((("ranked", ("gold", "silver")), "min"))
        silver_first = _chain_graph((("ranked", ("silver", "gold")), "min"))
        assert graph_key(gold_first) != graph_key(silver_first)
        assert cache.get(gold_first) is not cache.get(silver_first)

    def test_unsigned_graphs_keep_the_structural_key(self):
        cache = PreferenceCache()
        assert cache.get(_chain_graph()) is cache.get(_chain_graph())
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1,
                                 "maxsize": cache.maxsize}

    def test_orders_survive_restriction_and_equality(self):
        graph = _chain_graph(("min", "max"))
        sub = graph.restrict(0b10)  # keep only mileage
        assert sub.orders == ("max",)
        assert _chain_graph(("min", "max")) == graph
        assert _chain_graph(("max", "min")) != graph
        assert hash(_chain_graph(("min", "max"))) == hash(graph)

    def test_orders_round_trip_through_json(self):
        graph = _chain_graph((("ranked", ("gold", "silver")), "max"))
        clone = pgraph_from_json(pgraph_to_json(graph))
        assert clone == graph
        assert graph_key(clone) == graph_key(graph)


class TestQueryLayersSignTheirGraphs:
    def test_preferring_directions_split_cache_entries(self):
        records = [{"price": p, "hp": h}
                   for p, h in [(1, 9), (2, 5), (3, 7), (1, 5)]]
        relation = Relation.from_records(records,
                                         [lowest("price"), lowest("hp")])
        cache = PreferenceCache()
        context = ExecutionContext(cache=cache)
        cheap = evaluate_preferring(relation, "lowest(price) & lowest(hp)",
                                    context=context)
        fast = evaluate_preferring(relation, "lowest(price) & highest(hp)",
                                   context=context)
        # same p-graph structure, opposite hp direction: two entries and
        # two genuinely different answers
        assert cache.stats()["misses"] == 2
        assert [r["hp"] for r in cheap] != [r["hp"] for r in fast]

    def test_p_skyline_signs_relation_graphs_with_the_schema(self):
        records = [{"a": 1.0, "b": 2.0}, {"a": 2.0, "b": 1.0}]
        low = Relation.from_records(records, [lowest("a"), lowest("b")])
        high = Relation.from_records(records, [lowest("a"), highest("b")])
        cache = PreferenceCache()
        p_skyline(low, "a * b", context=ExecutionContext(cache=cache))
        p_skyline(high, "a * b", context=ExecutionContext(cache=cache))
        assert cache.stats()["misses"] == 2

    def test_orders_signature_covers_ranked_attributes(self):
        schema = [lowest("a"), highest("b"), ranked("c", ["x", "y"])]
        assert orders_signature(schema) == \
            ("min", "max", ("ranked", ("x", "y")))
