"""Shared fixtures for the figure benchmarks.

All benchmarks run at the ``QUICK`` scale so the whole suite finishes in
minutes; the same workload builders accept ``DEFAULT``/``FULL`` scales for
paper-sized runs (see ``examples/reproduce_figures.py`` and
EXPERIMENTS.md).  Each benchmark executes one algorithm over one
representative pool of tasks with ``benchmark.pedantic`` (few rounds, one
iteration) -- these are macro-benchmarks, not micro-benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import get_algorithm
from repro.bench.workloads import (QUICK, covertype_tasks, gaussian_tasks,
                                   nba_tasks)


@pytest.fixture(scope="session")
def gaussian_pool():
    return gaussian_tasks(QUICK)


@pytest.fixture(scope="session")
def nba_pool():
    return nba_tasks(QUICK)


@pytest.fixture(scope="session")
def covertype_pool():
    return covertype_tasks(QUICK)


def run_tasks(algorithm: str, tasks, **options) -> int:
    """Run one algorithm over a task list; returns total output size (so
    the work cannot be optimised away)."""
    function = get_algorithm(algorithm)
    total = 0
    for ranks, graph, _ in tasks:
        total += int(function(ranks, graph, **options).size)
    return total


def measure(benchmark, algorithm: str, tasks, rounds: int = 3,
            **options) -> None:
    result = benchmark.pedantic(
        lambda: run_tasks(algorithm, tasks, **options),
        rounds=rounds, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["total_output"] = result
    benchmark.extra_info["num_tasks"] = len(tasks)


def tasks_by(pool, predicate):
    selected = [task for task in pool if predicate(task)]
    assert selected, "workload selection is empty; widen the predicate"
    return selected


def output_sizes(pool) -> list[int]:
    """Precomputed p-skyline sizes of a pool (via OSDC)."""
    function = get_algorithm("osdc")
    return [int(function(ranks, graph).size) for ranks, graph, _ in pool]


@pytest.fixture(scope="session")
def gaussian_sizes(gaussian_pool):
    return output_sizes(gaussian_pool)


def split_by_median(pool, sizes):
    """Partition a pool into (small-output, large-output) halves."""
    median = float(np.median(sizes))
    small = [t for t, v in zip(pool, sizes) if v <= median]
    large = [t for t, v in zip(pool, sizes) if v > median]
    return small or pool[:1], large or pool[-1:]
