"""Figure 5: response time vs. p-graph topology [E3, E4].

The paper groups queries by the number of attributes (top) and by the
number of p-graph roots (bottom), per correlation level.  Expected shape:
OSDC's advantage grows with ``d`` (clear beyond ~10 attributes) and with
the number of roots (clear beyond ~5); BNL is competitive mostly on
queries with few roots (highly prioritized expressions produce small
outputs, which favours the scan).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import measure, tasks_by
from repro.bench.workloads import PAPER_ALGORITHMS


def _median_attributes(pool) -> float:
    return float(np.median([graph.d for _, graph, _ in pool]))


def _median_roots(pool) -> float:
    return float(np.median([graph.num_roots for _, graph, _ in pool]))


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("bucket", ["few-attrs", "many-attrs"])
def test_by_num_attributes(benchmark, gaussian_pool, algorithm, bucket):
    pivot = _median_attributes(gaussian_pool)
    if bucket == "few-attrs":
        tasks = tasks_by(gaussian_pool, lambda t: t[1].d <= pivot)
    else:
        tasks = tasks_by(gaussian_pool, lambda t: t[1].d >= pivot)
    benchmark.group = f"fig5-top {bucket}"
    measure(benchmark, algorithm, tasks)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("bucket", ["few-roots", "many-roots"])
def test_by_num_roots(benchmark, gaussian_pool, algorithm, bucket):
    pivot = _median_roots(gaussian_pool)
    if bucket == "few-roots":
        tasks = tasks_by(gaussian_pool, lambda t: t[1].num_roots <= pivot)
    else:
        tasks = tasks_by(gaussian_pool, lambda t: t[1].num_roots >= pivot)
    benchmark.group = f"fig5-bottom {bucket}"
    measure(benchmark, algorithm, tasks)
