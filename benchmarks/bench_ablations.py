"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **A1 look-ahead** -- OSDC vs. plain DC.  The single-point pruning of
  lines 13-15 is the entire output-sensitivity device; on small-output
  workloads OSDC should beat DC clearly.
* **A2 LESS filter size** -- the paper sweeps the elimination-filter
  threshold between 50 and 10,000 and keeps the best; this sweep exposes
  the trade-off.
* **A3 presort** -- SFS (``≻ext``-sorted scan) vs. the unsorted
  single-pass window scan (BNL): Theorem 3's practical value.
* **A4 linear average-case pre-scan** -- OSDC with/without the Section 5
  virtual-tuple phase on CI data.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import measure
from repro.bench.workloads import scaling_tasks
from repro.data.classic import independent
from repro.sampling.random_pexpr import PExpressionSampler

import random


@pytest.fixture(scope="module")
def small_output_pool(gaussian_pool, gaussian_sizes):
    ranked = sorted(zip(gaussian_sizes, range(len(gaussian_pool))))
    picks = [gaussian_pool[i] for _, i in ranked[: max(3, len(ranked) // 3)]]
    return picks


@pytest.mark.parametrize("algorithm", ["osdc", "dc"])
def test_a1_lookahead(benchmark, small_output_pool, algorithm):
    benchmark.group = "A1 look-ahead (small outputs)"
    measure(benchmark, algorithm, small_output_pool)


@pytest.mark.parametrize("filter_size", [50, 200, 1000, 5000])
def test_a2_less_filter(benchmark, gaussian_pool, filter_size):
    benchmark.group = "A2 LESS filter size"
    measure(benchmark, "less", gaussian_pool, filter_size=filter_size)


@pytest.mark.parametrize("presort", [True, False])
def test_a3_presort(benchmark, gaussian_pool, presort):
    benchmark.group = "A3 SFS presort"
    measure(benchmark, "sfs", gaussian_pool, presort=presort)


@pytest.fixture(scope="module")
def ci_pool():
    rng = random.Random(99)
    data_rng = np.random.default_rng(99)
    sampler = PExpressionSampler([f"A{i}" for i in range(5)])
    data = independent(30_000, 5, data_rng)
    return [(data, sampler.sample_graph(rng), {}) for _ in range(4)]


@pytest.mark.parametrize("algorithm", ["osdc", "osdc-linear"])
def test_a4_linear_prescan(benchmark, ci_pool, algorithm):
    benchmark.group = "A4 linear average-case pre-scan (CI data)"
    measure(benchmark, algorithm, ci_pool)


@pytest.mark.parametrize("select", ["first", "rotate", "widest"])
def test_a6_attribute_selection(benchmark, gaussian_pool, select):
    """A6: split-attribute selection strategy for OSDC (the paper leaves
    the choice open -- 'select an attribute from C')."""
    benchmark.group = "A6 OSDC split-attribute selection"
    measure(benchmark, "osdc", gaussian_pool, select=select)


@pytest.mark.parametrize("n", [2_000, 8_000, 32_000])
def test_a5_scaling(benchmark, n):
    """A5: near-linear growth of OSDC on CI data (Section 5)."""
    tasks = [t for t in scaling_tasks((n,))]
    benchmark.group = "A5 OSDC scaling on CI data"
    measure(benchmark, "osdc-linear", tasks)
