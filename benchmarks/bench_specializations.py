"""Benchmarks for the specialised evaluators and adversarial data shapes.

* LAYERED vs. OSDC on weak-order p-graphs (the planner's rule 2);
* duplicate-heavy Zipfian data, stressing the constant-promotion and
  ``SplitByValue`` equal-value branches;
* the exactly-uniform counting sampler vs. SampleSAT (workload
  generation throughput at d = 12).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.algorithms.layered import layered
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.data.classic import zipfian
from repro.sampling.random_pexpr import PExpressionSampler

WEAK_ORDER = "A0 & (A1 * A2) & (A3 * A4 * A5)"


@pytest.fixture(scope="module")
def weak_order_problem():
    nrng = np.random.default_rng(31)
    graph = PGraph.from_expression(parse(WEAK_ORDER),
                                   names=[f"A{i}" for i in range(6)])
    ranks = nrng.integers(0, 40, size=(40_000, 6)).astype(float)
    return ranks, graph


@pytest.mark.parametrize("evaluator", ["layered", "osdc"])
def test_weak_order_evaluators(benchmark, weak_order_problem, evaluator):
    ranks, graph = weak_order_problem
    function = layered if evaluator == "layered" else \
        get_algorithm("osdc")
    benchmark.group = "weak-order evaluation 40k rows"
    result = benchmark.pedantic(lambda: int(function(ranks, graph).size),
                                rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["output"] = result


@pytest.fixture(scope="module")
def zipf_problem():
    rng = random.Random(37)
    nrng = np.random.default_rng(37)
    sampler = PExpressionSampler([f"A{i}" for i in range(5)])
    graph = sampler.sample_graph(rng)
    ranks = zipfian(30_000, 5, nrng)
    return ranks, graph


@pytest.mark.parametrize("algorithm", ["osdc", "less", "bnl"])
def test_duplicate_heavy_zipf(benchmark, zipf_problem, algorithm):
    ranks, graph = zipf_problem
    function = get_algorithm(algorithm)
    benchmark.group = "zipfian duplicates 30k rows"
    result = benchmark.pedantic(lambda: int(function(ranks, graph).size),
                                rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["output"] = result


@pytest.mark.parametrize("method", ["counting", "samplesat"])
def test_sampler_throughput(benchmark, method):
    sampler = PExpressionSampler([f"A{i}" for i in range(12)],
                                 method=method)
    rng = random.Random(41)
    benchmark.group = "uniform p-graph sampling d=12"
    benchmark.pedantic(
        lambda: [sampler.sample_graph(rng) for _ in range(20)],
        rounds=3, iterations=1, warmup_rounds=1,
    )
