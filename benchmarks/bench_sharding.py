"""Macro-benchmark of sharded relations.

Four comparisons:

* serving a tracked p-expression from a sharded relation (merging the
  per-shard maintained skylines) vs a monolithic warm-pool
  scatter/gather vs serial OSDC, on one pinned equicorrelated workload
  (:func:`repro.bench.pool_bench.pinned_parallel_case`);
* the serve path as a function of the shard count;
* per-row inserts into a sharded maintainer vs a flat one;
* tracked serves over the ``QUICK`` gaussian workload pool
  (``bench/workloads.py``), covering real sampled p-expressions rather
  than a single pinned one.

Like ``bench_parallel_pool.py``, the structural claims are asserted
directly (the serve path answers from the maintained per-shard
skylines and matches OSDC exactly), so the acceptance criterion is
checked by the benchmark itself, not only eyeballed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.incremental import PSkylineMaintainer
from repro.algorithms.osdc import osdc
from repro.bench.pool_bench import pinned_parallel_case
from repro.bench.shard_bench import build_tracked_relation
from repro.core.sharding import ShardedPSkylineMaintainer
from repro.engine.pool import WorkerPool

N = 100_000
D = 6
SHARDS = 4
WORKERS = 4
INSERTS = 1_000


@pytest.fixture(scope="module")
def workload():
    return pinned_parallel_case(N, D)


@pytest.fixture(scope="module")
def tracked_relation(workload):
    ranks, graph = workload
    return build_tracked_relation(ranks, graph, SHARDS)


@pytest.fixture(scope="module")
def warm_pool(workload):
    ranks, graph = workload
    with WorkerPool(WORKERS) as pool:
        pool.run_query(ranks, graph, chunks=WORKERS)  # register + warm
        yield pool


def test_serial_osdc(benchmark, workload):
    ranks, graph = workload
    benchmark.group = f"sharded n={N} d={D}"
    result = benchmark.pedantic(lambda: osdc(ranks, graph),
                                rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["output"] = int(np.asarray(result).size)


def test_monolithic_scatter_gather(benchmark, workload, warm_pool):
    ranks, graph = workload
    benchmark.group = f"sharded n={N} d={D}"
    benchmark.pedantic(
        lambda: warm_pool.run_query(ranks, graph, chunks=WORKERS),
        rounds=3, iterations=1, warmup_rounds=1)


def test_tracked_serve(benchmark, workload, tracked_relation, warm_pool):
    """The maintained serve path: merge per-shard skylines, no scan."""
    ranks, graph = workload
    benchmark.group = f"sharded n={N} d={D}"
    result = benchmark.pedantic(
        lambda: tracked_relation.p_skyline(graph, pool=warm_pool),
        rounds=3, iterations=1, warmup_rounds=1)
    expected = osdc(ranks, graph)
    assert np.array_equal(tracked_relation.skyline_gids(graph), expected)
    benchmark.extra_info["output"] = len(result)


@pytest.mark.parametrize("shards", [2, 4, 8])
def test_serve_shard_scaling(benchmark, workload, shards):
    ranks, graph = workload
    benchmark.group = f"serve scaling n={N} d={D}"
    relation = build_tracked_relation(ranks, graph, shards)
    with WorkerPool(WORKERS) as pool:
        relation.p_skyline(graph, pool=pool)  # register + warm
        benchmark.pedantic(
            lambda: relation.p_skyline(graph, pool=pool),
            rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("maintainer_kind", ["flat", "sharded"])
def test_insert_throughput(benchmark, workload, maintainer_kind):
    ranks, graph = workload
    base, stream = ranks[: N // 10], ranks[N // 10: N // 10 + INSERTS]
    benchmark.group = f"inserts base={N // 10} d={D}"

    def build():
        if maintainer_kind == "flat":
            maintainer = PSkylineMaintainer(graph,
                                            capacity=len(base) + INSERTS)
        else:
            maintainer = ShardedPSkylineMaintainer(
                graph, SHARDS, capacity=len(base) + INSERTS)
        maintainer.bulk_load(base)
        return (maintainer,), {}

    def run(maintainer):
        for row in stream:
            maintainer.insert(row)
        return maintainer.skyline_ids().size

    result = benchmark.pedantic(run, setup=build, rounds=3, iterations=1)
    benchmark.extra_info["skyline"] = int(result)


def test_workload_pool_serves(benchmark, gaussian_pool):
    """Tracked serves across the QUICK workload's sampled expressions."""
    benchmark.group = "sharded workload pool"
    tasks = gaussian_pool[: 6]
    relations = [
        (build_tracked_relation(ranks, graph, SHARDS), ranks, graph)
        for ranks, graph, _ in tasks]

    def serve_all() -> int:
        total = 0
        for relation, _ranks, graph in relations:
            total += relation.skyline_gids(graph).size
        return total

    total = benchmark.pedantic(serve_all, rounds=3, iterations=1,
                               warmup_rounds=1)
    for relation, ranks, graph in relations:
        assert np.array_equal(relation.skyline_gids(graph),
                              osdc(ranks, graph))
    benchmark.extra_info["total_output"] = int(total)
    benchmark.extra_info["num_tasks"] = len(relations)
