"""Figure 4 (right): response time vs. output size [E2].

The paper regroups the correlation runs by the size ``v`` of the query
result and fits a 2nd-order polynomial per algorithm.  Expected shape:
OSDC and LESS win for large outputs, BNL is competitive only for queries
returning very few tuples; all grow with ``v``.

Benchmarks time each algorithm separately on the small-output and the
large-output halves of the Gaussian pool.
"""

from __future__ import annotations

import pytest

from conftest import measure, split_by_median
from repro.bench.workloads import PAPER_ALGORITHMS


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("half", ["small-v", "large-v"])
def test_output_size_half(benchmark, gaussian_pool, gaussian_sizes,
                          algorithm, half):
    small, large = split_by_median(gaussian_pool, gaussian_sizes)
    tasks = small if half == "small-v" else large
    benchmark.group = f"fig4-right {half}"
    measure(benchmark, algorithm, tasks)
