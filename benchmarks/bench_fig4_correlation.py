"""Figure 4 (left): response time vs. data correlation [E1].

The paper plots the mean response time of OSDC / LESS / BNL over random
p-expressions against the measured pairwise Pearson correlation of the
equicorrelated Gaussian data.  Expected shape: BNL and LESS are
competitive under positive correlation and degrade sharply on
anti-correlated data; OSDC stays nearly flat.

Each benchmark here times one algorithm over the expression pool of one
correlation level.  ``examples/reproduce_figures.py`` prints the full
series at larger scales.
"""

from __future__ import annotations

import pytest

from conftest import measure, tasks_by
from repro.bench.workloads import PAPER_ALGORITHMS, QUICK

_LEVELS = [round(rho, 2) for rho in QUICK.correlation_targets]


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("rho", _LEVELS)
def test_correlation_level(benchmark, gaussian_pool, algorithm, rho):
    tasks = tasks_by(
        gaussian_pool,
        lambda task: round(task[2]["target_correlation"], 2) == rho,
    )
    benchmark.group = f"fig4-left rho={rho:+.2f}"
    measure(benchmark, algorithm, tasks)
