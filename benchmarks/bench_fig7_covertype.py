"""Figure 7: the CoverType workload [E7, E8].

Cartographic rows over 10 quantitative attributes (here: the statistical
simulation of :mod:`repro.data.covertype`; smaller values preferred),
random p-expressions with d in 5..10.  Expected shape as in Figure 6:
OSDC ahead of LESS and BNL, with the gap widening for larger outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import measure, output_sizes, split_by_median, tasks_by
from repro.bench.workloads import PAPER_ALGORITHMS


@pytest.fixture(scope="module")
def covertype_sizes(covertype_pool):
    return output_sizes(covertype_pool)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("bucket", ["low-d", "high-d"])
def test_covertype_by_attributes(benchmark, covertype_pool, algorithm,
                                 bucket):
    pivot = float(np.median([graph.d for _, graph, _ in covertype_pool]))
    if bucket == "low-d":
        tasks = tasks_by(covertype_pool, lambda t: t[1].d <= pivot)
    else:
        tasks = tasks_by(covertype_pool, lambda t: t[1].d >= pivot)
    benchmark.group = f"fig7-left {bucket}"
    measure(benchmark, algorithm, tasks)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("half", ["small-v", "large-v"])
def test_covertype_by_output(benchmark, covertype_pool, covertype_sizes,
                             algorithm, half):
    small, large = split_by_median(covertype_pool, covertype_sizes)
    tasks = small if half == "small-v" else large
    benchmark.group = f"fig7-right {half}"
    measure(benchmark, algorithm, tasks)
