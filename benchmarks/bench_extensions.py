"""Benchmarks for the extension algorithms (not in the paper's Figure set).

* BBS over an STR R-tree vs. OSDC vs. SALSA -- index-based and
  sort-and-limit evaluation against the paper's winner;
* incremental maintenance throughput vs. recomputation.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from conftest import measure
from repro.algorithms.incremental import PSkylineMaintainer
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.sampling.random_pexpr import PExpressionSampler


@pytest.mark.parametrize("algorithm", ["osdc", "bbs", "salsa"])
def test_extension_algorithms(benchmark, gaussian_pool, algorithm):
    benchmark.group = "extensions: osdc vs bbs vs salsa"
    measure(benchmark, algorithm, gaussian_pool)


def test_incremental_insert_stream(benchmark):
    rng = random.Random(3)
    nrng = np.random.default_rng(3)
    sampler = PExpressionSampler([f"A{i}" for i in range(5)])
    graph = sampler.sample_graph(rng)
    stream = nrng.random((5_000, 5))

    def run() -> int:
        maintainer = PSkylineMaintainer(graph, capacity=8192)
        for row in stream:
            maintainer.insert(row)
        return maintainer.skyline_ids().size

    benchmark.group = "incremental maintenance"
    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    benchmark.extra_info["final_skyline"] = result


def test_incremental_vs_recompute(benchmark):
    """Recomputing with OSDC after every insert -- the naive alternative
    the maintainer replaces."""
    from repro.algorithms import osdc
    rng = random.Random(3)
    nrng = np.random.default_rng(3)
    sampler = PExpressionSampler([f"A{i}" for i in range(5)])
    graph = sampler.sample_graph(rng)
    stream = nrng.random((400, 5))  # far fewer inserts: this is O(n^2)

    def run() -> int:
        size = 0
        for stop in range(1, stream.shape[0] + 1):
            size = osdc(stream[:stop], graph).size
        return size

    benchmark.group = "incremental maintenance"
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
