"""Figure 6: the NBA workload [E5, E6].

21,959 player-season rows over 14 attributes (here: the statistical
simulation of :mod:`repro.data.nba`; larger values preferred), random
p-expressions with d in 7..14.  The paper reports time grouped by d
(left) and by output size (right); expected shape: OSDC outperforms LESS
and BNL, most clearly when the output exceeds ~1% of the input.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import measure, output_sizes, split_by_median, tasks_by
from repro.bench.workloads import PAPER_ALGORITHMS


@pytest.fixture(scope="module")
def nba_sizes(nba_pool):
    return output_sizes(nba_pool)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("bucket", ["low-d", "high-d"])
def test_nba_by_attributes(benchmark, nba_pool, algorithm, bucket):
    pivot = float(np.median([graph.d for _, graph, _ in nba_pool]))
    if bucket == "low-d":
        tasks = tasks_by(nba_pool, lambda t: t[1].d <= pivot)
    else:
        tasks = tasks_by(nba_pool, lambda t: t[1].d >= pivot)
    benchmark.group = f"fig6-left {bucket}"
    measure(benchmark, algorithm, tasks)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("half", ["small-v", "large-v"])
def test_nba_by_output(benchmark, nba_pool, nba_sizes, algorithm, half):
    small, large = split_by_median(nba_pool, nba_sizes)
    tasks = small if half == "small-v" else large
    benchmark.group = f"fig6-right {half}"
    measure(benchmark, algorithm, tasks)
