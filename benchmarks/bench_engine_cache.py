"""Micro-benchmark of the compiled-preference cache.

Measures repeat-query evaluation cold (cache cleared before every run,
so the dominance oracle, ``≻ext`` weights and topological metadata are
rebuilt each time) versus warm (compiled once, served from the cache).
Large ``d`` emphasises the preprocessing the cache amortises; the
results must be identical either way.

Also asserts the speed-up directly (median warm <= median cold) so the
acceptance criterion is checked by the benchmark itself, not only
eyeballed from the timings table.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.algorithms.base import get_algorithm
from repro.engine import ExecutionContext, PreferenceCache
from repro.sampling.random_pexpr import PExpressionSampler

D = 14
N = 400
REPEATS = 20


@pytest.fixture(scope="module")
def repeat_query_workload():
    rng = random.Random(23)
    sampler = PExpressionSampler([f"A{i}" for i in range(D)])
    graph = sampler.sample_graph(rng)
    ranks = np.random.default_rng(23).normal(size=(N, D)).round(2)
    return ranks, graph


def run_repeats(ranks, graph, algorithm: str, warm: bool):
    function = get_algorithm(algorithm)
    cache = PreferenceCache()
    results = []
    for _ in range(REPEATS):
        if not warm:
            cache.clear()
        context = ExecutionContext(cache=cache)
        results.append(function(ranks, graph, context=context))
    return results


@pytest.mark.parametrize("algorithm", ["osdc"])
def test_repeat_queries_cold(benchmark, repeat_query_workload, algorithm):
    ranks, graph = repeat_query_workload
    benchmark.group = f"{REPEATS}x repeat query d={D} ({algorithm})"
    benchmark.pedantic(
        lambda: run_repeats(ranks, graph, algorithm, warm=False),
        rounds=3, iterations=1, warmup_rounds=1,
    )


@pytest.mark.parametrize("algorithm", ["osdc"])
def test_repeat_queries_warm(benchmark, repeat_query_workload, algorithm):
    ranks, graph = repeat_query_workload
    benchmark.group = f"{REPEATS}x repeat query d={D} ({algorithm})"
    benchmark.pedantic(
        lambda: run_repeats(ranks, graph, algorithm, warm=True),
        rounds=3, iterations=1, warmup_rounds=1,
    )


def test_warm_is_faster_and_identical(repeat_query_workload):
    """The acceptance check: warm repeat queries beat cold ones and the
    indices agree exactly."""
    ranks, graph = repeat_query_workload

    def timed(warm: bool):
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            results = run_repeats(ranks, graph, "osdc", warm=warm)
            samples.append(time.perf_counter() - start)
        return float(np.median(samples)), results

    cold_time, cold_results = timed(warm=False)
    warm_time, warm_results = timed(warm=True)
    for cold, warm in zip(cold_results, warm_results):
        assert np.array_equal(cold, warm)
    assert warm_time < cold_time, (
        f"warm repeats ({warm_time:.4f}s) should beat cold repeats "
        f"({cold_time:.4f}s)"
    )
