"""Benchmarks for the external-memory algorithms (page I/O substrate).

Compares the scan-based external operators (Section 6) against the
external-memory OSDC built for the paper's Section 8 future-work
question, on both wall-clock and page I/O (reported via ``extra_info``).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.algorithms import Stats, get_algorithm
from repro.sampling.random_pexpr import PExpressionSampler

_EXTERNAL = ["external-bnl", "external-sfs", "external-osdc"]


@pytest.fixture(scope="module")
def external_problem():
    rng = random.Random(23)
    data_rng = np.random.default_rng(23)
    sampler = PExpressionSampler([f"A{i}" for i in range(6)])
    graph = sampler.sample_graph(rng)
    ranks = np.round(data_rng.normal(size=(30_000, 6)), 2)
    return ranks, graph


@pytest.mark.parametrize("algorithm", _EXTERNAL)
def test_external_algorithms(benchmark, external_problem, algorithm):
    ranks, graph = external_problem
    function = get_algorithm(algorithm)
    benchmark.group = "external memory 30k rows"
    stats_box = {}

    def run() -> int:
        stats = Stats()
        result = function(ranks, graph, stats=stats, page_size=512)
        stats_box["io"] = stats.io_reads + stats.io_writes
        return int(result.size)

    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    benchmark.extra_info["output"] = result
    benchmark.extra_info["page_io"] = stats_box["io"]


@pytest.mark.parametrize("budget", [1024, 4096, 16384])
def test_external_osdc_memory_budget(benchmark, external_problem, budget):
    """Smaller budgets force deeper external recursion: the I/O cost of
    running truly out-of-core."""
    ranks, graph = external_problem
    function = get_algorithm("external-osdc")
    benchmark.group = "external-osdc memory budget"
    benchmark.pedantic(
        lambda: int(function(ranks, graph, page_size=512,
                             memory_budget=budget).size),
        rounds=3, iterations=1, warmup_rounds=1,
    )
