"""Macro-benchmark of the persistent worker pool.

Three comparisons on one pinned equicorrelated workload
(:func:`repro.bench.pool_bench.pinned_parallel_case`):

* cold fork-per-query pool vs warm persistent pool vs serial OSDC --
  the cold run re-forks its workers and re-registers the rank matrix
  into shared memory on every query (the pre-pool behaviour of
  ``parallel-osdc``), the warm run ships only descriptors;
* warm-pool wall clock as a function of the worker count;
* the batched query service (one registration, ``k`` p-expressions)
  against ``k`` independent cold parallel calls.

Like ``bench_engine_cache.py``, the amortisation claims are asserted
directly (warm strictly cheaper than cold), so the acceptance criterion
is checked by the benchmark itself, not only eyeballed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.parallel import parallel_osdc
from repro.bench.pool_bench import (pinned_batch_expressions,
                                    pinned_parallel_case)
from repro.core.pgraph import PGraph
from repro.engine.pool import WorkerPool

N = 100_000
D = 6
WORKERS = 4
BATCH = 8


@pytest.fixture(scope="module")
def workload():
    return pinned_parallel_case(N, D)


@pytest.fixture(scope="module")
def warm_pool(workload):
    ranks, graph = workload
    with WorkerPool(WORKERS) as pool:
        pool.run_query(ranks, graph, chunks=WORKERS)  # register + warm
        yield pool


def test_serial_osdc(benchmark, workload):
    ranks, graph = workload
    benchmark.group = f"pool n={N} d={D}"
    result = benchmark.pedantic(
        lambda: parallel_osdc(ranks, graph, processes=1),
        rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["output"] = int(np.asarray(result).size)


def test_cold_pool_per_query(benchmark, workload):
    ranks, graph = workload
    benchmark.group = f"pool n={N} d={D}"
    benchmark.pedantic(
        lambda: parallel_osdc(ranks, graph, processes=WORKERS,
                              min_chunk=1, fresh_pool=True),
        rounds=3, iterations=1, warmup_rounds=0)


def test_warm_pool(benchmark, workload, warm_pool):
    ranks, graph = workload
    benchmark.group = f"pool n={N} d={D}"
    benchmark.pedantic(
        lambda: warm_pool.run_query(ranks, graph, chunks=WORKERS),
        rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_warm_pool_scaling(benchmark, workload, workers):
    ranks, graph = workload
    benchmark.group = f"pool scaling n={N} d={D}"
    with WorkerPool(workers) as pool:
        pool.run_query(ranks, graph, chunks=workers)
        benchmark.pedantic(
            lambda: pool.run_query(ranks, graph, chunks=workers),
            rounds=3, iterations=1, warmup_rounds=1)


def test_batch_amortisation(workload):
    """One warm batch must beat independent cold calls outright."""
    import time

    ranks, _graph = workload
    expressions = pinned_batch_expressions(D, BATCH)
    names = tuple(f"A{i}" for i in range(D))
    graphs = [PGraph.from_expression(e, names=names)
              for e in expressions]

    start = time.perf_counter()
    cold = [parallel_osdc(ranks, graph, processes=WORKERS, min_chunk=1,
                          fresh_pool=True) for graph in graphs]
    cold_seconds = time.perf_counter() - start

    with WorkerPool(WORKERS) as pool:
        pool.map_queries(ranks, [(g, None) for g in graphs[:1]],
                         chunks=WORKERS)
        start = time.perf_counter()
        warm = pool.map_queries(ranks, [(g, None) for g in graphs],
                                chunks=WORKERS)
        warm_seconds = time.perf_counter() - start

    for cold_result, warm_result in zip(cold, warm):
        assert np.array_equal(cold_result, warm_result)
    assert warm_seconds < cold_seconds, (
        f"warm batch {warm_seconds:.3f}s should beat {BATCH} cold "
        f"calls {cold_seconds:.3f}s")


def test_warm_beats_cold(workload):
    import time

    ranks, graph = workload
    start = time.perf_counter()
    parallel_osdc(ranks, graph, processes=WORKERS, min_chunk=1,
                  fresh_pool=True)
    cold_seconds = time.perf_counter() - start
    with WorkerPool(WORKERS) as pool:
        pool.run_query(ranks, graph, chunks=WORKERS)
        start = time.perf_counter()
        pool.run_query(ranks, graph, chunks=WORKERS)
        warm_seconds = time.perf_counter() - start
    assert warm_seconds < cold_seconds