"""Micro-benchmarks of the p-screening machinery (Section 4).

Compares the recursive PSCREEN (with the Lemma 3/4 low-dimensional base
cases) against the quadratic block screen, and benchmarks the scalar
components the divide-and-conquer algorithms rely on.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.algorithms.pscreen import PScreener
from repro.core.bitsets import iter_bits
from repro.core.dominance import Dominance
from repro.core.extension import ExtensionOrder
from repro.sampling.random_pexpr import PExpressionSampler


@pytest.fixture(scope="module")
def screening_problem():
    rng = random.Random(17)
    data_rng = np.random.default_rng(17)
    d = 6
    sampler = PExpressionSampler([f"A{i}" for i in range(d)])
    graph = sampler.sample_graph(rng)
    ranks = np.round(data_rng.normal(size=(10_000, d)), 2)
    root = next(iter_bits(graph.roots))
    column = ranks[:, root]
    tau = float(np.median(column))
    if tau == column.min():
        tau = float(column[column > column.min()].min())
    b_idx = np.flatnonzero(column < tau)
    w_idx = np.flatnonzero(column >= tau)
    return ranks, graph, b_idx, w_idx


def test_pscreen_recursive(benchmark, screening_problem):
    ranks, graph, b_idx, w_idx = screening_problem
    screener = PScreener(graph)
    benchmark.group = "pscreen 10k rows"
    result = benchmark.pedantic(
        lambda: screener.screen(ranks, b_idx, w_idx).size,
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["survivors"] = result


def test_pscreen_quadratic(benchmark, screening_problem):
    ranks, graph, b_idx, w_idx = screening_problem
    dominance = Dominance(graph)
    benchmark.group = "pscreen 10k rows"
    result = benchmark.pedantic(
        lambda: int(dominance.screen_block(ranks[w_idx],
                                           ranks[b_idx]).sum()),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["survivors"] = result


@pytest.mark.parametrize("kernel", ["bitmask", "gemm"])
def test_screen_block_kernel(benchmark, screening_problem, kernel):
    """The same quadratic screen, one measurement per bulk kernel."""
    ranks, graph, b_idx, w_idx = screening_problem
    dominance = Dominance(graph).prepare()
    benchmark.group = "screen_block kernels 10k rows"
    result = benchmark.pedantic(
        lambda: int(dominance.screen_block(ranks[w_idx], ranks[b_idx],
                                           kernel=kernel).sum()),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["survivors"] = result


def test_screen_block_scalar_kernel(benchmark, screening_problem):
    """Scalar reference kernel on a 500-row slice (it is O(n*m) Python)."""
    ranks, graph, b_idx, w_idx = screening_problem
    dominance = Dominance(graph)
    block, against = ranks[w_idx[:500]], ranks[b_idx[:500]]
    benchmark.group = "screen_block kernels 500 rows"
    result = benchmark.pedantic(
        lambda: int(dominance.screen_block(block, against,
                                           kernel="scalar").sum()),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["survivors"] = result


def test_extension_sort(benchmark, screening_problem):
    ranks, graph, _, _ = screening_problem
    extension = ExtensionOrder(graph)
    benchmark.group = "presort"
    benchmark.pedantic(lambda: extension.argsort(ranks),
                       rounds=3, iterations=1, warmup_rounds=1)
